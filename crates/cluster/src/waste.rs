//! GPU waste-ratio computation: single fault sets, fault-ratio sweeps and
//! trace replay.

use fault::{FaultTrace, IidFaultModel};
use hbd_types::par::par_map;
use hbd_types::{NodeId, Seconds};
use rand::Rng;
use serde::{Deserialize, Serialize};
use topology::{FaultSet, HbdArchitecture};

/// One sampled point of a waste curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WastePoint {
    /// The x-coordinate: either a node-fault ratio (sweeps) or a time in
    /// seconds (trace replay).
    pub x: f64,
    /// The GPU waste ratio at that point.
    pub waste_ratio: f64,
}

/// Waste ratio of one architecture under one fault set and TP size.
pub fn waste_ratio(arch: &dyn HbdArchitecture, faults: &FaultSet, tp_size: usize) -> f64 {
    arch.utilization(faults, tp_size).waste_ratio()
}

/// Sweep of the waste ratio against the node-fault ratio (Figs 14 / 22): for
/// each requested ratio, `trials` random fault sets are drawn from the i.i.d.
/// model and the waste ratios averaged.
pub fn waste_vs_fault_ratio<R: Rng + ?Sized>(
    arch: &dyn HbdArchitecture,
    tp_size: usize,
    fault_ratios: &[f64],
    trials: usize,
    rng: &mut R,
) -> Vec<WastePoint> {
    assert!(trials > 0, "need at least one trial per point");
    fault_ratios
        .iter()
        .map(|&ratio| {
            let model = IidFaultModel::new(arch.nodes(), ratio);
            let mean: f64 = (0..trials)
                .map(|_| {
                    let faults = FaultSet::from_nodes(model.sample_exact(rng));
                    waste_ratio(arch, &faults, tp_size)
                })
                .sum::<f64>()
                / trials as f64;
            WastePoint {
                x: ratio,
                waste_ratio: mean,
            }
        })
        .collect()
}

/// Parallel version of [`waste_vs_fault_ratio`]: fans the `(ratio, trial)`
/// Monte-Carlo grid out over up to `threads` scoped threads, with one
/// deterministic RNG stream per shard derived from `master_seed`.
///
/// Unlike the sequential variant (which threads a single caller-owned RNG
/// through the whole grid), the result here depends only on `master_seed` —
/// never on the thread count — so `threads = 1` and `threads = N` produce
/// byte-identical curves.
pub fn waste_vs_fault_ratio_par(
    arch: &dyn HbdArchitecture,
    tp_size: usize,
    fault_ratios: &[f64],
    trials: usize,
    master_seed: u64,
    threads: usize,
) -> Vec<WastePoint> {
    let means = fault::sweep_means(
        arch.nodes(),
        fault_ratios,
        trials,
        master_seed,
        threads,
        |faulty, _ratio| {
            let faults = FaultSet::from_nodes_clamped(arch.nodes(), faulty.iter().copied());
            waste_ratio(arch, &faults, tp_size)
        },
    );
    fault_ratios
        .iter()
        .zip(means)
        .map(|(&ratio, mean)| WastePoint {
            x: ratio,
            waste_ratio: mean,
        })
        .collect()
}

/// Replays a fault trace against an architecture, sampling the waste ratio at
/// `samples` evenly spaced instants (Figs 13 / 20 / 21). The trace must cover
/// at least as many nodes as the architecture; extra trace nodes are ignored.
pub fn waste_over_trace(
    arch: &dyn HbdArchitecture,
    trace: &FaultTrace,
    tp_size: usize,
    samples: usize,
) -> Vec<WastePoint> {
    waste_over_trace_par(arch, trace, tp_size, samples, 1)
}

/// Parallel version of [`waste_over_trace`]: the sampled instants are
/// independent, so they fan out over up to `threads` scoped threads. The trace
/// query itself is deterministic (no RNG), so the result is identical for any
/// thread count.
pub fn waste_over_trace_par(
    arch: &dyn HbdArchitecture,
    trace: &FaultTrace,
    tp_size: usize,
    samples: usize,
    threads: usize,
) -> Vec<WastePoint> {
    assert!(
        trace.nodes() >= arch.nodes(),
        "trace covers {} nodes but the architecture has {}",
        trace.nodes(),
        arch.nodes()
    );
    let instants: Vec<(Seconds, Vec<NodeId>)> = trace.sample(samples);
    par_map(threads, &instants, |_, (t, faulty)| {
        let faults = FaultSet::from_nodes_clamped(arch.nodes(), faulty.iter().copied());
        WastePoint {
            x: t.value(),
            waste_ratio: waste_ratio(arch, &faults, tp_size),
        }
    })
}

/// Empirical CDF of a series of waste points, as `(waste ratio, cumulative
/// probability)` pairs (the Fig 13 / 21 presentation).
pub fn waste_cdf(points: &[WastePoint]) -> Vec<(f64, f64)> {
    let mut ratios: Vec<f64> = points.iter().map(|p| p.waste_ratio).collect();
    ratios.sort_by(|a, b| a.partial_cmp(b).expect("waste ratios are finite"));
    let n = ratios.len() as f64;
    ratios
        .into_iter()
        .enumerate()
        .map(|(i, r)| (r, (i + 1) as f64 / n))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fault::{GeneratorConfig, TraceGenerator};
    use hbd_types::NodeId;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use topology::{paper_architectures, KHopRing, Nvl, NvlVariant};

    #[test]
    fn waste_ratio_delegates_to_the_architecture() {
        let ring = KHopRing::new(720, 4, 3).unwrap();
        assert_eq!(waste_ratio(&ring, &FaultSet::new(), 32), 0.0);
        let nvl = Nvl::new(720, 4, NvlVariant::Nvl36);
        assert!(waste_ratio(&nvl, &FaultSet::new(), 16) > 0.11);
    }

    #[test]
    fn nvl_sweep_stays_near_its_fragmentation_floor() {
        // Fig 14b: NVL-36/72 waste hovers around the ~11% fragmentation floor
        // regardless of the fault ratio (faults mostly consume GPUs that were
        // already stranded by fragmentation).
        let mut rng = StdRng::seed_from_u64(3);
        let nvl = Nvl::new(720, 4, NvlVariant::Nvl72);
        let points = waste_vs_fault_ratio(&nvl, 32, &[0.0, 0.05, 0.10], 5, &mut rng);
        assert_eq!(points.len(), 3);
        assert!((points[0].waste_ratio - 8.0 / 72.0).abs() < 1e-9);
        for point in &points {
            assert!(
                point.waste_ratio > 0.05 && point.waste_ratio < 0.16,
                "NVL-72 waste at fault ratio {}: {}",
                point.x,
                point.waste_ratio
            );
        }
    }

    #[test]
    fn infinitehbd_stays_near_zero_across_the_sweep() {
        let mut rng = StdRng::seed_from_u64(4);
        let ring = KHopRing::new(720, 4, 3).unwrap();
        let points = waste_vs_fault_ratio(&ring, 32, &[0.02, 0.05, 0.07], 5, &mut rng);
        for point in points {
            assert!(
                point.waste_ratio < 0.02,
                "K=3 waste should be near zero at {}: {}",
                point.x,
                point.waste_ratio
            );
        }
    }

    #[test]
    fn paper_ranking_holds_on_the_fault_model() {
        // At a 5% node fault ratio with TP-32, the ordering of Fig 14b:
        // InfiniteHBD(K=3) < NVL-576 < NVL-72 < TPUv4 / SiP-Ring.
        let mut rng = StdRng::seed_from_u64(5);
        let archs = paper_architectures(720, 4, 32);
        let mut measured = std::collections::HashMap::new();
        for arch in &archs {
            let points = waste_vs_fault_ratio(arch.as_ref(), 32, &[0.05], 8, &mut rng);
            measured.insert(arch.name().to_string(), points[0].waste_ratio);
        }
        assert!(measured["InfiniteHBD(K=3)"] < measured["NVL-576"]);
        assert!(measured["NVL-576"] < measured["NVL-72"] + 1e-9);
        assert!(measured["InfiniteHBD(K=2)"] < measured["TPUv4"]);
        assert!(measured["NVL-72"] < measured["TPUv4"]);
        assert!(measured["InfiniteHBD(K=3)"] < 0.01);
        assert!(measured["SiP-Ring"] > 0.2);
    }

    #[test]
    fn trace_replay_produces_one_point_per_sample() {
        let generator = TraceGenerator::new(GeneratorConfig {
            nodes: 720,
            duration: Seconds::from_days(30.0),
            steady_state_fault_ratio: 0.0117,
            mean_time_to_repair: Seconds::from_hours(12.0),
        })
        .unwrap();
        let trace = generator.generate(&mut StdRng::seed_from_u64(6));
        let ring = KHopRing::new(720, 4, 2).unwrap();
        let points = waste_over_trace(&ring, &trace, 32, 50);
        assert_eq!(points.len(), 50);
        let mean: f64 = points.iter().map(|p| p.waste_ratio).sum::<f64>() / 50.0;
        assert!(mean < 0.02, "K=2 mean waste over the trace: {mean}");
        let cdf = waste_cdf(&points);
        assert_eq!(cdf.len(), 50);
        assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn parallel_trace_replay_matches_sequential() {
        let generator = TraceGenerator::new(GeneratorConfig {
            nodes: 720,
            duration: Seconds::from_days(20.0),
            steady_state_fault_ratio: 0.0117,
            mean_time_to_repair: Seconds::from_hours(12.0),
        })
        .unwrap();
        let trace = generator.generate(&mut StdRng::seed_from_u64(8));
        let ring = KHopRing::new(720, 4, 2).unwrap();
        let seq = waste_over_trace(&ring, &trace, 32, 40);
        let par = waste_over_trace_par(&ring, &trace, 32, 40, 4);
        assert_eq!(seq, par);
    }

    #[test]
    fn parallel_sweep_is_thread_count_invariant() {
        let ring = KHopRing::new(720, 4, 2).unwrap();
        let ratios = [0.0, 0.04, 0.08];
        let one = waste_vs_fault_ratio_par(&ring, 32, &ratios, 6, 42, 1);
        let four = waste_vs_fault_ratio_par(&ring, 32, &ratios, 6, 42, 4);
        assert_eq!(one, four);
        // Same fault model, same trial count: the parallel sweep tracks the
        // sequential one statistically (exact fault counts, different draws).
        let mut rng = StdRng::seed_from_u64(42);
        let seq = waste_vs_fault_ratio(&ring, 32, &ratios, 6, &mut rng);
        for (p, s) in one.iter().zip(&seq) {
            assert_eq!(p.x, s.x);
            assert!((p.waste_ratio - s.waste_ratio).abs() < 0.05);
        }
    }

    #[test]
    #[should_panic(expected = "trace covers")]
    fn undersized_trace_is_rejected() {
        let trace = fault::FaultTrace::new(10, Seconds(100.0), vec![]).unwrap();
        let ring = KHopRing::new(720, 4, 2).unwrap();
        let _ = waste_over_trace(&ring, &trace, 32, 5);
    }

    #[test]
    fn exact_fault_sets_use_requested_node_range() {
        let mut rng = StdRng::seed_from_u64(9);
        let model = IidFaultModel::new(100, 0.1);
        let nodes = model.sample_exact(&mut rng);
        assert!(nodes.iter().all(|n: &NodeId| n.index() < 100));
    }
}
