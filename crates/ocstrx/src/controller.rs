//! The OCS controller and the *fast switch* mechanism (Appendix G.1).
//!
//! Centralized OCS switches pay milliseconds-to-minutes of end-to-end
//! reconfiguration because the control plane computes and distributes a new
//! crossbar configuration on every change. The OCSTrx controller instead
//! **preloads** a small set of "Top-Session" configurations (which path, and for
//! the loopback path which lane pairing) into the module; switching between
//! preloaded sessions only triggers the thermo-optic settling (~60–80 µs), not a
//! control-plane round trip.
//!
//! The controller model tracks which sessions are preloaded, charges a (much
//! larger, configurable) control-plane latency when a switch targets a session
//! that was *not* preloaded, and exposes counters so experiments can confirm
//! that steady-state operation (fault bypass, ring re-formation, Binary Exchange
//! AllToAll rounds) only ever uses preloaded sessions.

use crate::path::PathId;
use crate::transceiver::OcsTrx;
use hbd_types::{HbdError, Microseconds, Result};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Identifier of a preloaded session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SessionId(pub u32);

/// A preloadable switch configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SessionConfig {
    /// The path this session activates.
    pub path: PathId,
}

/// The per-module fast-switch controller.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FastSwitchController {
    sessions: HashMap<SessionId, SessionConfig>,
    /// Maximum number of sessions the controller SRAM can hold.
    capacity: usize,
    /// Control-plane latency charged when switching to a configuration that was
    /// not preloaded (microseconds). Modeled after a software round trip to the
    /// node fabric manager.
    cold_switch_penalty: Microseconds,
    fast_switches: u64,
    cold_switches: u64,
}

impl FastSwitchController {
    /// Default controller: 8 preloadable sessions, 5 ms cold-switch penalty.
    pub fn new() -> Self {
        Self::with_capacity(8, Microseconds(5_000.0))
    }

    /// Creates a controller with an explicit session capacity and cold-switch
    /// penalty.
    pub fn with_capacity(capacity: usize, cold_switch_penalty: Microseconds) -> Self {
        FastSwitchController {
            sessions: HashMap::new(),
            capacity,
            cold_switch_penalty,
            fast_switches: 0,
            cold_switches: 0,
        }
    }

    /// Preloads a session. Fails when the controller SRAM is full.
    pub fn preload(&mut self, id: SessionId, config: SessionConfig) -> Result<()> {
        if self.sessions.len() >= self.capacity && !self.sessions.contains_key(&id) {
            return Err(HbdError::invalid_operation(format!(
                "controller session table full ({} entries)",
                self.capacity
            )));
        }
        self.sessions.insert(id, config);
        Ok(())
    }

    /// Removes a preloaded session.
    pub fn evict(&mut self, id: SessionId) -> Option<SessionConfig> {
        self.sessions.remove(&id)
    }

    /// Number of preloaded sessions.
    pub fn preloaded(&self) -> usize {
        self.sessions.len()
    }

    /// Whether a session is preloaded.
    pub fn is_preloaded(&self, id: SessionId) -> bool {
        self.sessions.contains_key(&id)
    }

    /// Switches the transceiver to the given preloaded session, returning the
    /// end-to-end latency (the 60–80 µs fast-switch window).
    pub fn fast_switch(&mut self, trx: &mut OcsTrx, id: SessionId) -> Result<Microseconds> {
        let config = *self
            .sessions
            .get(&id)
            .ok_or_else(|| HbdError::invalid_operation(format!("session {id:?} not preloaded")))?;
        let latency = trx.reconfigure(config.path)?;
        self.fast_switches += 1;
        Ok(latency)
    }

    /// Switches to a configuration that was not preloaded: the control plane
    /// must program the session first, so the cold penalty is added on top of
    /// the optical reconfiguration. The session becomes preloaded afterwards
    /// (evicting an arbitrary entry if the table was full).
    pub fn cold_switch(
        &mut self,
        trx: &mut OcsTrx,
        id: SessionId,
        config: SessionConfig,
    ) -> Result<Microseconds> {
        if self.sessions.len() >= self.capacity && !self.sessions.contains_key(&id) {
            let victim = *self
                .sessions
                .keys()
                .min()
                .expect("table is full, so it is non-empty");
            self.sessions.remove(&victim);
        }
        self.sessions.insert(id, config);
        let optical = trx.reconfigure(config.path)?;
        self.cold_switches += 1;
        Ok(optical + self.cold_switch_penalty)
    }

    /// Number of fast (preloaded) switches performed.
    pub fn fast_switch_count(&self) -> u64 {
        self.fast_switches
    }

    /// Number of cold (control-plane) switches performed.
    pub fn cold_switch_count(&self) -> u64 {
        self.cold_switches
    }
}

impl Default for FastSwitchController {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn controller_with_standard_sessions() -> FastSwitchController {
        let mut controller = FastSwitchController::new();
        controller
            .preload(
                SessionId(1),
                SessionConfig {
                    path: PathId::External1,
                },
            )
            .unwrap();
        controller
            .preload(
                SessionId(2),
                SessionConfig {
                    path: PathId::External2,
                },
            )
            .unwrap();
        controller
            .preload(
                SessionId(3),
                SessionConfig {
                    path: PathId::Loopback,
                },
            )
            .unwrap();
        controller
    }

    #[test]
    fn fast_switch_uses_preloaded_session_within_window() {
        let mut controller = controller_with_standard_sessions();
        let mut trx = OcsTrx::new();
        let t = controller.fast_switch(&mut trx, SessionId(2)).unwrap();
        assert!(t.value() >= 60.0 && t.value() <= 80.0);
        assert_eq!(trx.active_path(), PathId::External2);
        assert_eq!(controller.fast_switch_count(), 1);
        assert_eq!(controller.cold_switch_count(), 0);
    }

    #[test]
    fn switching_to_unpreloaded_session_fails_fast_path() {
        let mut controller = FastSwitchController::new();
        let mut trx = OcsTrx::new();
        assert!(controller.fast_switch(&mut trx, SessionId(9)).is_err());
    }

    #[test]
    fn cold_switch_pays_control_plane_penalty() {
        let mut controller = FastSwitchController::new();
        let mut trx = OcsTrx::new();
        let t = controller
            .cold_switch(
                &mut trx,
                SessionId(7),
                SessionConfig {
                    path: PathId::Loopback,
                },
            )
            .unwrap();
        assert!(
            t.value() > 1_000.0,
            "cold switch should cost milliseconds, got {t}"
        );
        assert!(controller.is_preloaded(SessionId(7)));
        // The same session is now fast.
        trx.reconfigure(PathId::External1).unwrap();
        let t2 = controller.fast_switch(&mut trx, SessionId(7)).unwrap();
        assert!(t2.value() <= 80.0);
    }

    #[test]
    fn preload_respects_capacity() {
        let mut controller = FastSwitchController::with_capacity(2, Microseconds(1000.0));
        controller
            .preload(
                SessionId(1),
                SessionConfig {
                    path: PathId::External1,
                },
            )
            .unwrap();
        controller
            .preload(
                SessionId(2),
                SessionConfig {
                    path: PathId::External2,
                },
            )
            .unwrap();
        assert!(controller
            .preload(
                SessionId(3),
                SessionConfig {
                    path: PathId::Loopback
                }
            )
            .is_err());
        // Updating an existing session is always allowed.
        assert!(controller
            .preload(
                SessionId(2),
                SessionConfig {
                    path: PathId::Loopback
                }
            )
            .is_ok());
        assert_eq!(controller.preloaded(), 2);
    }

    #[test]
    fn cold_switch_evicts_when_full() {
        let mut controller = FastSwitchController::with_capacity(1, Microseconds(1000.0));
        controller
            .preload(
                SessionId(1),
                SessionConfig {
                    path: PathId::External1,
                },
            )
            .unwrap();
        let mut trx = OcsTrx::new();
        controller
            .cold_switch(
                &mut trx,
                SessionId(2),
                SessionConfig {
                    path: PathId::External2,
                },
            )
            .unwrap();
        assert!(controller.is_preloaded(SessionId(2)));
        assert!(!controller.is_preloaded(SessionId(1)));
        assert_eq!(controller.preloaded(), 1);
    }

    #[test]
    fn evict_removes_sessions() {
        let mut controller = controller_with_standard_sessions();
        assert!(controller.evict(SessionId(1)).is_some());
        assert!(controller.evict(SessionId(1)).is_none());
        assert_eq!(controller.preloaded(), 2);
    }
}
