//! OCSTrx *bundles* — the unit of connectivity the topology reasons about.
//!
//! On the UBB 2.0 baseboard (Fig 4), each pair of GPUs shares a bundle of
//! OCSTrx modules: one GPU drives the upper-half SerDes lanes, the other the
//! lower half. A 6.4 Tbps GPU needs 8 × 800 Gbps modules per bundle. The bundle
//! acts as a single logical switchable link: all modules in the bundle are
//! reconfigured together, and its aggregate bandwidth rides on whichever path is
//! active.

use crate::path::PathId;
use crate::transceiver::{OcsTrx, TrxConfig};
use hbd_types::{Gbps, HbdError, Microseconds, Result};
use serde::{Deserialize, Serialize};

/// Aggregate state of a bundle, as seen by the topology layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BundleState {
    /// The bundle carries traffic on its primary external path.
    ActivePrimary,
    /// The bundle carries traffic on its backup external path (fault bypass).
    ActiveBackup,
    /// The bundle is closed into the intra-node loopback (ring endpoint).
    Loopback,
    /// The bundle is idle (e.g. replaced by a DAC link in the cost-reduced
    /// variant, or simply unused by the current job).
    Idle,
}

/// A bundle of OCSTrx modules serving one GPU pair.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Bundle {
    modules: Vec<OcsTrx>,
    state: BundleState,
}

impl Bundle {
    /// Creates a bundle of `modules` OCSTrx with the default QSFP-DD 800G
    /// configuration. The paper's reference design uses 8 modules per bundle
    /// for a 6.4 Tbps GPU.
    pub fn new(modules: usize) -> Result<Self> {
        Self::with_config(modules, TrxConfig::qsfp_dd_800g())
    }

    /// Creates a bundle with an explicit per-module configuration.
    pub fn with_config(modules: usize, config: TrxConfig) -> Result<Self> {
        if modules == 0 {
            return Err(HbdError::invalid_config(
                "a bundle needs at least one OCSTrx",
            ));
        }
        Ok(Bundle {
            modules: (0..modules)
                .map(|_| OcsTrx::with_config(config))
                .collect::<Result<Vec<_>>>()?,
            state: BundleState::ActivePrimary,
        })
    }

    /// The bundle sized for the paper's 6.4 Tbps GPU (8 × 800 Gbps).
    pub fn for_6_4_tbps_gpu() -> Self {
        Self::new(8).expect("8 modules is a valid bundle")
    }

    /// Number of OCSTrx modules in the bundle.
    pub fn module_count(&self) -> usize {
        self.modules.len()
    }

    /// Aggregate line rate of the bundle.
    pub fn aggregate_bandwidth(&self) -> Gbps {
        self.modules
            .iter()
            .map(|m| m.config().line_rate)
            .fold(Gbps::ZERO, |a, b| a + b)
    }

    /// Current aggregate state.
    pub fn state(&self) -> BundleState {
        self.state
    }

    /// Bandwidth currently delivered by the bundle (zero when idle).
    pub fn delivered_bandwidth(&self) -> Gbps {
        match self.state {
            BundleState::Idle => Gbps::ZERO,
            _ => self
                .modules
                .iter()
                .filter(|m| m.is_carrying_traffic())
                .map(|m| m.config().line_rate)
                .fold(Gbps::ZERO, |a, b| a + b),
        }
    }

    /// Switches the whole bundle to its primary external path. Returns the
    /// latency of the slowest module (they reconfigure concurrently).
    pub fn activate_primary(&mut self) -> Result<Microseconds> {
        let t = self.reconfigure_all(PathId::External1)?;
        self.state = BundleState::ActivePrimary;
        Ok(t)
    }

    /// Switches the whole bundle to its backup external path (fault bypass).
    pub fn activate_backup(&mut self) -> Result<Microseconds> {
        let t = self.reconfigure_all(PathId::External2)?;
        self.state = BundleState::ActiveBackup;
        Ok(t)
    }

    /// Closes the bundle into the intra-node cross-lane loopback, making the
    /// two GPUs of the pair ring endpoints.
    pub fn activate_loopback(&mut self) -> Result<Microseconds> {
        let t = self.reconfigure_all(PathId::Loopback)?;
        self.state = BundleState::Loopback;
        Ok(t)
    }

    /// Marks the bundle idle (no traffic, e.g. not used by the current ring).
    pub fn set_idle(&mut self) {
        self.state = BundleState::Idle;
    }

    /// Marks the fiber of the given external path as down on every module
    /// (e.g. the neighbour node failed).
    pub fn mark_path_down(&mut self, path: PathId) {
        for module in &mut self.modules {
            module.mark_down(path);
        }
    }

    /// Repairs the given path on every module.
    pub fn mark_path_repaired(&mut self, path: PathId) {
        for module in &mut self.modules {
            module.mark_repaired(path);
        }
    }

    /// Read-only access to the modules.
    pub fn modules(&self) -> &[OcsTrx] {
        &self.modules
    }

    fn reconfigure_all(&mut self, path: PathId) -> Result<Microseconds> {
        let mut worst = Microseconds::ZERO;
        for module in &mut self.modules {
            let t = module.reconfigure(path)?;
            worst = worst.max(t);
        }
        Ok(worst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_bundle_reaches_6_4_tbps() {
        let bundle = Bundle::for_6_4_tbps_gpu();
        assert_eq!(bundle.module_count(), 8);
        assert_eq!(bundle.aggregate_bandwidth(), Gbps(6400.0));
        assert_eq!(bundle.state(), BundleState::ActivePrimary);
        assert_eq!(bundle.delivered_bandwidth(), Gbps(6400.0));
    }

    #[test]
    fn empty_bundles_are_rejected() {
        assert!(Bundle::new(0).is_err());
    }

    #[test]
    fn bundle_reconfiguration_latency_is_bounded_by_slowest_module() {
        let mut bundle = Bundle::new(4).unwrap();
        let t = bundle.activate_backup().unwrap();
        assert!(t.value() >= 60.0 && t.value() <= 80.0);
        assert_eq!(bundle.state(), BundleState::ActiveBackup);
        assert_eq!(bundle.delivered_bandwidth(), Gbps(3200.0));
    }

    #[test]
    fn loopback_closes_the_bundle() {
        let mut bundle = Bundle::new(2).unwrap();
        bundle.activate_loopback().unwrap();
        assert_eq!(bundle.state(), BundleState::Loopback);
        assert_eq!(bundle.delivered_bandwidth(), Gbps(1600.0));
    }

    #[test]
    fn idle_bundles_deliver_no_bandwidth() {
        let mut bundle = Bundle::new(2).unwrap();
        bundle.set_idle();
        assert_eq!(bundle.delivered_bandwidth(), Gbps::ZERO);
    }

    #[test]
    fn fault_bypass_workflow_restores_bandwidth() {
        let mut bundle = Bundle::new(8).unwrap();
        // Neighbour on the primary path fails.
        bundle.mark_path_down(PathId::External1);
        assert_eq!(bundle.delivered_bandwidth(), Gbps::ZERO);
        // Cannot go back to primary while it is down...
        assert!(bundle.activate_primary().is_err());
        // ...but the backup path restores the full bandwidth.
        bundle.activate_backup().unwrap();
        assert_eq!(bundle.delivered_bandwidth(), Gbps(6400.0));
        // After repair the primary can be re-activated.
        bundle.mark_path_repaired(PathId::External1);
        bundle.activate_primary().unwrap();
        assert_eq!(bundle.state(), BundleState::ActivePrimary);
        assert_eq!(bundle.delivered_bandwidth(), Gbps(6400.0));
    }
}
