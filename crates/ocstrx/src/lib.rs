//! Behavioural model of the **OCSTrx** — the Silicon-Photonics Optical Circuit
//! Switching transceiver at the heart of InfiniteHBD (§4.1 and §5.1 of the
//! paper).
//!
//! The real device is a QSFP-DD 800 Gbps module that embeds:
//!
//! * an **MZI switch matrix** on the Photonic Integrated Circuit (PIC) that lets
//!   the Tx light path be steered between two *external* outputs and an
//!   *internal cross-lane loopback* path,
//! * a photodetector per Rx path plus a linear TIA,
//! * an OCS controller chip that drives the thermo-optic phase arms and realises
//!   the 60–80 µs *fast switch* mechanism by preloading "Top-Session"
//!   configurations.
//!
//! This crate models that hardware at the behavioural level needed by the rest
//! of the simulator:
//!
//! * [`mzi`] / [`matrix`] — the optical routing fabric (which input lane reaches
//!   which output port, how many MZI stages the light crosses, the per-stage
//!   insertion loss),
//! * [`path`] / [`transceiver`] — the three-way path state machine with
//!   exclusive activation and reconfiguration latency,
//! * [`optics`] — insertion-loss and bit-error-rate models parameterised by
//!   ambient temperature, calibrated to the paper's measurements (Figs 10a, 11
//!   and 12),
//! * [`power`] — core-module and peripheral power (Fig 10b),
//! * [`controller`] — the fast-switch controller with preloaded sessions,
//! * [`bundle`] — the OCSTrx *bundle* abstraction used by the topology crate
//!   (one bundle per GPU pair on the UBB 2.0 baseboard).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bundle;
pub mod controller;
pub mod matrix;
pub mod mzi;
pub mod optics;
pub mod path;
pub mod power;
pub mod transceiver;

pub use bundle::{Bundle, BundleState};
pub use controller::{FastSwitchController, SessionId};
pub use matrix::MziSwitchMatrix;
pub use mzi::{MziElement, MziState};
pub use optics::{BerModel, InsertionLossModel, OpticalConditions};
pub use path::{PathId, PathState};
pub use power::PowerModel;
pub use transceiver::{OcsTrx, TrxConfig};
