//! Optical performance models of the OCSTrx core module: insertion loss and
//! bit-error rate as functions of ambient temperature and optical modulation
//! amplitude (OMA).
//!
//! The paper reports lab measurements of the packaged module (§5.1):
//!
//! * insertion loss between 2.5 dB and 4.0 dB with an average of **3.3 dB at
//!   25 °C**, growing slightly with temperature (Figs 10a and 11);
//! * core-module power below 3.2 W across temperatures (Fig 10b — modelled in
//!   [`crate::power`]);
//! * BER of exactly 0 at −5 °C and 25 °C, and 0 in most cases at 50 °C / 75 °C
//!   with occasional errors only at very low OMA (Fig 12).
//!
//! We cannot re-measure the physical device, so this module provides a
//! *statistical* model calibrated to those published numbers: sampling it many
//! times regenerates distributions with the same mean / spread / temperature
//! trend as the paper's histograms. All sampling is driven by a caller-provided
//! RNG so experiments stay reproducible.

use rand::distributions::Distribution;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Ambient conditions for an optical measurement.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OpticalConditions {
    /// Ambient temperature in °C.
    pub temperature_c: f64,
    /// Optical modulation amplitude in mW.
    pub oma_mw: f64,
}

impl OpticalConditions {
    /// Room-temperature conditions with a healthy OMA.
    pub fn room_temperature() -> Self {
        OpticalConditions {
            temperature_c: 25.0,
            oma_mw: 1.0,
        }
    }
}

/// Statistical model of the core-module insertion loss.
///
/// Loss is modelled as a truncated Gaussian whose mean rises mildly with
/// temperature: 3.3 dB at 25 °C (the paper's average), ~3.2 dB at 0 °C and
/// ~3.5 dB at 85 °C, truncated to the observed 2.5–4.0 dB support at room
/// temperature (the support widens slightly with temperature, matching the
/// broader histograms of Fig 11c/d).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InsertionLossModel {
    /// Mean loss at 25 °C in dB.
    pub mean_at_25c_db: f64,
    /// Increase of the mean per °C above 25 °C.
    pub slope_db_per_c: f64,
    /// Standard deviation of the unit-to-unit spread in dB.
    pub sigma_db: f64,
}

impl InsertionLossModel {
    /// Model calibrated to the paper's measurements.
    pub fn paper_calibrated() -> Self {
        InsertionLossModel {
            mean_at_25c_db: 3.3,
            slope_db_per_c: 0.003,
            sigma_db: 0.28,
        }
    }

    /// Mean insertion loss at the given temperature, in dB.
    pub fn mean_db(&self, temperature_c: f64) -> f64 {
        self.mean_at_25c_db + self.slope_db_per_c * (temperature_c - 25.0)
    }

    /// Lower bound of the observed support at the given temperature.
    pub fn min_db(&self, temperature_c: f64) -> f64 {
        (self.mean_db(temperature_c) - 3.0 * self.sigma_db).max(2.0)
    }

    /// Upper bound of the observed support at the given temperature.
    pub fn max_db(&self, temperature_c: f64) -> f64 {
        self.mean_db(temperature_c) + 3.0 * self.sigma_db
    }

    /// Draws one unit's insertion loss at the given temperature.
    pub fn sample<R: Rng + ?Sized>(&self, temperature_c: f64, rng: &mut R) -> f64 {
        let mean = self.mean_db(temperature_c);
        let lo = self.min_db(temperature_c);
        let hi = self.max_db(temperature_c);
        // Box–Muller style draw via summing uniforms (Irwin–Hall approximation
        // of a Gaussian) keeps us independent of rand_distr.
        loop {
            let z: f64 = (0..12).map(|_| rng.gen::<f64>()).sum::<f64>() - 6.0;
            let sample = mean + z * self.sigma_db;
            if sample >= lo && sample <= hi {
                return sample;
            }
        }
    }

    /// Draws `n` unit losses, the shape used by the Fig 11 histograms.
    pub fn sample_population<R: Rng + ?Sized>(
        &self,
        temperature_c: f64,
        n: usize,
        rng: &mut R,
    ) -> Vec<f64> {
        (0..n).map(|_| self.sample(temperature_c, rng)).collect()
    }
}

impl Default for InsertionLossModel {
    fn default() -> Self {
        Self::paper_calibrated()
    }
}

/// Statistical model of the bit-error rate versus OMA and temperature (Fig 12).
///
/// The published behaviour: at −5 °C and 25 °C the BER is 0 for every tested
/// OMA; at 50 °C and 75 °C the BER is 0 in most cases with occasional errors at
/// very low OMA (≲0.4 mW). We model the error probability as a logistic cliff
/// in OMA whose threshold moves up with temperature; above the cliff the BER is
/// exactly zero (the paper reports genuine zeros, not just "below measurement
/// floor").
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BerModel {
    /// OMA (mW) below which errors start appearing at 50 °C.
    pub threshold_oma_at_50c_mw: f64,
    /// How much the threshold rises per °C above 50 °C.
    pub threshold_slope_per_c: f64,
    /// Worst-case BER when operating far below threshold.
    pub floor_ber: f64,
}

impl BerModel {
    /// Model calibrated to the paper's Fig 12.
    pub fn paper_calibrated() -> Self {
        BerModel {
            threshold_oma_at_50c_mw: 0.35,
            threshold_slope_per_c: 0.006,
            floor_ber: 1e-6,
        }
    }

    /// OMA threshold below which errors may occur at the given temperature.
    /// Below 50 °C the threshold is zero: the device is error-free at any OMA.
    pub fn threshold_oma_mw(&self, temperature_c: f64) -> f64 {
        if temperature_c < 40.0 {
            0.0
        } else {
            self.threshold_oma_at_50c_mw
                + self.threshold_slope_per_c * (temperature_c - 50.0).max(0.0)
        }
    }

    /// Expected BER under the given conditions. Returns exactly `0.0` in the
    /// regimes where the paper measured zero errors.
    pub fn expected_ber(&self, conditions: OpticalConditions) -> f64 {
        let threshold = self.threshold_oma_mw(conditions.temperature_c);
        if threshold <= 0.0 || conditions.oma_mw >= threshold {
            0.0
        } else {
            // Error rate grows as OMA drops below the threshold, saturating at
            // the floor BER.
            let deficit = (threshold - conditions.oma_mw) / threshold;
            (self.floor_ber * deficit.powi(2)).min(self.floor_ber)
        }
    }

    /// Simulates a BER measurement over `bits` transmitted bits, returning the
    /// measured BER (0 when no errors occurred).
    pub fn measure<R: Rng + ?Sized>(
        &self,
        conditions: OpticalConditions,
        bits: u64,
        rng: &mut R,
    ) -> f64 {
        let p = self.expected_ber(conditions);
        if p <= 0.0 {
            return 0.0;
        }
        // Binomial sampling via Poisson approximation (p is tiny, bits is huge).
        let lambda = p * bits as f64;
        let errors = poisson_sample(lambda, rng);
        errors as f64 / bits as f64
    }
}

impl Default for BerModel {
    fn default() -> Self {
        Self::paper_calibrated()
    }
}

/// Draws from a Poisson distribution with mean `lambda` using inversion for
/// small means and a Gaussian approximation for large means.
fn poisson_sample<R: Rng + ?Sized>(lambda: f64, rng: &mut R) -> u64 {
    if lambda <= 0.0 {
        return 0;
    }
    if lambda < 30.0 {
        let l = (-lambda).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= rng.gen::<f64>();
            if p <= l {
                return k;
            }
            k += 1;
        }
    } else {
        let z: f64 = (0..12).map(|_| rng.gen::<f64>()).sum::<f64>() - 6.0;
        (lambda + z * lambda.sqrt()).round().max(0.0) as u64
    }
}

/// Uniform distribution helper retained for API completeness (used by tests and
/// the experiment harness to sweep OMA values).
#[derive(Debug, Clone, Copy)]
pub struct OmaSweep {
    /// Lowest OMA of the sweep in mW.
    pub min_mw: f64,
    /// Highest OMA of the sweep in mW.
    pub max_mw: f64,
    /// Number of points.
    pub points: usize,
}

impl OmaSweep {
    /// The sweep used in Fig 12 (roughly 0.2 mW to 1.2 mW).
    pub fn paper_sweep() -> Self {
        OmaSweep {
            min_mw: 0.2,
            max_mw: 1.2,
            points: 11,
        }
    }

    /// The OMA values of the sweep.
    pub fn values(&self) -> Vec<f64> {
        assert!(self.points >= 2, "a sweep needs at least two points");
        (0..self.points)
            .map(|i| {
                self.min_mw + (self.max_mw - self.min_mw) * i as f64 / (self.points - 1) as f64
            })
            .collect()
    }
}

impl Distribution<f64> for InsertionLossModel {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.sample(25.0, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn room_temperature_mean_matches_paper() {
        let model = InsertionLossModel::paper_calibrated();
        assert!((model.mean_db(25.0) - 3.3).abs() < 1e-9);
        assert!(model.mean_db(85.0) > model.mean_db(25.0));
        assert!(model.mean_db(0.0) < model.mean_db(25.0));
    }

    #[test]
    fn sampled_losses_stay_in_published_range() {
        let model = InsertionLossModel::paper_calibrated();
        let mut rng = rng();
        for &temp in &[0.0, 25.0, 50.0, 85.0] {
            let samples = model.sample_population(temp, 500, &mut rng);
            for &s in &samples {
                assert!(
                    (2.0..=5.0).contains(&s),
                    "loss {s} out of plausible range at {temp}C"
                );
            }
            let mean: f64 = samples.iter().sum::<f64>() / samples.len() as f64;
            assert!((mean - model.mean_db(temp)).abs() < 0.1);
        }
    }

    #[test]
    fn sample_population_has_requested_size() {
        let model = InsertionLossModel::default();
        let samples = model.sample_population(25.0, 128, &mut rng());
        assert_eq!(samples.len(), 128);
    }

    #[test]
    fn ber_is_zero_at_low_temperature() {
        let model = BerModel::paper_calibrated();
        for oma in [0.2, 0.5, 1.0] {
            for temp in [-5.0, 25.0] {
                let cond = OpticalConditions {
                    temperature_c: temp,
                    oma_mw: oma,
                };
                assert_eq!(model.expected_ber(cond), 0.0);
            }
        }
    }

    #[test]
    fn ber_appears_only_at_low_oma_and_high_temperature() {
        let model = BerModel::paper_calibrated();
        let hot_low = OpticalConditions {
            temperature_c: 75.0,
            oma_mw: 0.25,
        };
        let hot_high = OpticalConditions {
            temperature_c: 75.0,
            oma_mw: 1.0,
        };
        assert!(model.expected_ber(hot_low) > 0.0);
        assert_eq!(model.expected_ber(hot_high), 0.0);
        assert!(model.expected_ber(hot_low) <= model.floor_ber);
    }

    #[test]
    fn measured_ber_is_zero_when_expected_zero() {
        let model = BerModel::paper_calibrated();
        let cond = OpticalConditions {
            temperature_c: 25.0,
            oma_mw: 0.3,
        };
        assert_eq!(model.measure(cond, 1_000_000_000, &mut rng()), 0.0);
    }

    #[test]
    fn measured_ber_tracks_expected_order_of_magnitude() {
        let model = BerModel::paper_calibrated();
        let cond = OpticalConditions {
            temperature_c: 75.0,
            oma_mw: 0.2,
        };
        let expected = model.expected_ber(cond);
        let measured = model.measure(cond, 10_000_000_000, &mut rng());
        assert!(measured > 0.0);
        assert!(measured < expected * 10.0);
    }

    #[test]
    fn oma_sweep_spans_requested_range() {
        let sweep = OmaSweep::paper_sweep();
        let values = sweep.values();
        assert_eq!(values.len(), 11);
        assert!((values[0] - 0.2).abs() < 1e-9);
        assert!((values[10] - 1.2).abs() < 1e-9);
        assert!(values.windows(2).all(|w| w[1] > w[0]));
    }

    #[test]
    fn poisson_sampler_means_are_reasonable() {
        let mut rng = rng();
        for &lambda in &[0.5, 5.0, 100.0] {
            let n = 2000;
            let total: u64 = (0..n).map(|_| poisson_sample(lambda, &mut rng)).sum();
            let mean = total as f64 / n as f64;
            assert!((mean - lambda).abs() < lambda.max(1.0) * 0.15);
        }
        assert_eq!(poisson_sample(0.0, &mut rng), 0);
    }
}
