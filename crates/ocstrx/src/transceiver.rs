//! The OCSTrx module: the path state machine, reconfiguration latency and the
//! bandwidth-allocation rule.
//!
//! The transceiver is the unit that the topology crate reasons about: it has
//! exactly one *active* path at a time (time-division bandwidth allocation,
//! §3 Design 1), switching between paths costs 60–80 µs end to end, and the
//! full line rate (800 Gbps per module) always rides on the active path.

use crate::matrix::MziSwitchMatrix;
use crate::optics::{BerModel, InsertionLossModel, OpticalConditions};
use crate::path::{PathId, PathState};
use crate::power::PowerModel;
use hbd_types::{Gbps, HbdError, Microseconds, Result, Watts};
use serde::{Deserialize, Serialize};

/// Static configuration of an OCSTrx module.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrxConfig {
    /// Line rate of the module.
    pub line_rate: Gbps,
    /// Number of SerDes lane pairs (8 for QSFP-DD 800G).
    pub lanes: usize,
    /// Lower bound of the end-to-end reconfiguration latency.
    pub reconfig_min: Microseconds,
    /// Upper bound of the end-to-end reconfiguration latency.
    pub reconfig_max: Microseconds,
}

impl TrxConfig {
    /// The QSFP-DD 800 Gbps configuration evaluated in the paper.
    pub fn qsfp_dd_800g() -> Self {
        TrxConfig {
            line_rate: Gbps(800.0),
            lanes: 8,
            reconfig_min: Microseconds(60.0),
            reconfig_max: Microseconds(80.0),
        }
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<()> {
        if self.lanes == 0 || !self.lanes.is_multiple_of(2) {
            return Err(HbdError::invalid_config(format!(
                "OCSTrx needs an even, positive lane count (got {})",
                self.lanes
            )));
        }
        if self.line_rate.value() <= 0.0 {
            return Err(HbdError::invalid_config("line rate must be positive"));
        }
        if self.reconfig_min.value() <= 0.0 || self.reconfig_max.value() < self.reconfig_min.value()
        {
            return Err(HbdError::invalid_config(
                "reconfiguration latency bounds must satisfy 0 < min <= max",
            ));
        }
        Ok(())
    }
}

impl Default for TrxConfig {
    fn default() -> Self {
        Self::qsfp_dd_800g()
    }
}

/// A single OCSTrx module.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OcsTrx {
    config: TrxConfig,
    matrix: MziSwitchMatrix,
    loss_model: InsertionLossModel,
    ber_model: BerModel,
    power_model: PowerModel,
    active: PathId,
    states: [PathState; 3],
    /// Total number of reconfigurations performed (telemetry).
    reconfig_count: u64,
    /// Accumulated reconfiguration time in microseconds (telemetry).
    reconfig_time_us: f64,
}

impl OcsTrx {
    /// Creates a transceiver with the QSFP-DD 800G configuration, external
    /// path 1 active (the deployment-time default: the primary neighbour link).
    pub fn new() -> Self {
        Self::with_config(TrxConfig::qsfp_dd_800g()).expect("default config is valid")
    }

    /// Creates a transceiver with an explicit configuration.
    pub fn with_config(config: TrxConfig) -> Result<Self> {
        config.validate()?;
        Ok(OcsTrx {
            config,
            matrix: MziSwitchMatrix::new(config.lanes)?,
            loss_model: InsertionLossModel::paper_calibrated(),
            ber_model: BerModel::paper_calibrated(),
            power_model: PowerModel::paper_calibrated(),
            active: PathId::External1,
            states: [PathState::Active, PathState::Standby, PathState::Standby],
            reconfig_count: 0,
            reconfig_time_us: 0.0,
        })
    }

    /// Static configuration.
    pub fn config(&self) -> &TrxConfig {
        &self.config
    }

    /// The currently active path.
    pub fn active_path(&self) -> PathId {
        self.active
    }

    /// State of a given path.
    pub fn path_state(&self, path: PathId) -> PathState {
        self.states[Self::idx(path)]
    }

    /// Bandwidth carried by `path` right now. The full line rate rides on the
    /// active path; every other path carries zero — this is the "no redundant
    /// link waste" property of Design 1.
    pub fn bandwidth_on(&self, path: PathId) -> Gbps {
        if path == self.active && self.states[Self::idx(path)].carries_traffic() {
            self.config.line_rate
        } else {
            Gbps::ZERO
        }
    }

    /// Marks a path as down (e.g. the neighbour node on that fiber failed).
    /// If the active path goes down the transceiver stops carrying traffic
    /// until it is reconfigured onto a selectable path.
    pub fn mark_down(&mut self, path: PathId) {
        self.states[Self::idx(path)] = PathState::Down;
    }

    /// Restores a previously-down path to standby.
    pub fn mark_repaired(&mut self, path: PathId) {
        if self.states[Self::idx(path)] == PathState::Down {
            self.states[Self::idx(path)] = if self.active == path {
                PathState::Active
            } else {
                PathState::Standby
            };
        }
    }

    /// Whether the transceiver is currently able to carry traffic.
    pub fn is_carrying_traffic(&self) -> bool {
        self.states[Self::idx(self.active)].carries_traffic()
    }

    /// Reconfigures the transceiver onto `path`, returning the end-to-end
    /// reconfiguration latency. Selecting the already-active path is free.
    ///
    /// The returned latency is the paper's 60–80 µs window: the optical
    /// (thermo-optic) settling time from the MZI model, floored/capped by the
    /// configured bounds which also account for the controller firmware.
    pub fn reconfigure(&mut self, path: PathId) -> Result<Microseconds> {
        if !self.states[Self::idx(path)].is_selectable() {
            return Err(HbdError::invalid_operation(format!(
                "cannot activate {path}: path is down"
            )));
        }
        if path == self.active {
            return Ok(Microseconds::ZERO);
        }
        let optical_settle = match path {
            PathId::External1 => {
                let mut t: f64 = 0.0;
                for lane in 0..self.config.lanes {
                    t = t.max(self.matrix.steer_external(lane, PathId::External1)?);
                }
                t
            }
            PathId::External2 => {
                let mut t: f64 = 0.0;
                for lane in 0..self.config.lanes {
                    t = t.max(self.matrix.steer_external(lane, PathId::External2)?);
                }
                t
            }
            PathId::Loopback => {
                let half = self.config.lanes / 2;
                let mut t: f64 = 0.0;
                for lane in 0..half {
                    t = t.max(self.matrix.steer_loopback(lane, lane + half)?);
                }
                t
            }
        };
        // End-to-end latency = optical settling + controller overhead, clamped
        // to the published 60–80 µs window.
        let latency = (optical_settle + 40.0)
            .max(self.config.reconfig_min.value())
            .min(self.config.reconfig_max.value());

        // Demote the old active path, promote the new one.
        let old = self.active;
        if self.states[Self::idx(old)] == PathState::Active {
            self.states[Self::idx(old)] = PathState::Standby;
        }
        self.states[Self::idx(path)] = PathState::Active;
        self.active = path;
        self.reconfig_count += 1;
        self.reconfig_time_us += latency;
        Ok(Microseconds(latency))
    }

    /// Insertion loss of the currently active path under the given conditions,
    /// drawn from the statistical loss model (deterministic mean via
    /// [`InsertionLossModel::mean_db`] is also available on the model itself).
    pub fn insertion_loss_db<R: rand::Rng + ?Sized>(
        &self,
        conditions: OpticalConditions,
        rng: &mut R,
    ) -> f64 {
        // The loopback path crosses more MZI stages; charge the extra element
        // loss relative to the external-path baseline that the model was
        // calibrated on.
        let extra = match self.active {
            PathId::Loopback => {
                self.matrix.element_loss_db(PathId::Loopback)
                    - self.matrix.element_loss_db(PathId::External1)
            }
            _ => 0.0,
        };
        self.loss_model.sample(conditions.temperature_c, rng) + extra
    }

    /// Expected BER of the active path under the given conditions.
    pub fn expected_ber(&self, conditions: OpticalConditions) -> f64 {
        self.ber_model.expected_ber(conditions)
    }

    /// Total module power under the given conditions.
    pub fn power(&self, temperature_c: f64) -> Watts {
        self.power_model.total_power(self.active, temperature_c)
    }

    /// Number of reconfigurations performed since creation.
    pub fn reconfiguration_count(&self) -> u64 {
        self.reconfig_count
    }

    /// Total time spent reconfiguring since creation.
    pub fn total_reconfiguration_time(&self) -> Microseconds {
        Microseconds(self.reconfig_time_us)
    }

    /// Access to the underlying switch matrix (read-only).
    pub fn matrix(&self) -> &MziSwitchMatrix {
        &self.matrix
    }

    fn idx(path: PathId) -> usize {
        match path {
            PathId::External1 => 0,
            PathId::External2 => 1,
            PathId::Loopback => 2,
        }
    }
}

impl Default for OcsTrx {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn defaults_match_qsfp_dd_800g() {
        let trx = OcsTrx::new();
        assert_eq!(trx.config().line_rate, Gbps(800.0));
        assert_eq!(trx.config().lanes, 8);
        assert_eq!(trx.active_path(), PathId::External1);
        assert!(trx.is_carrying_traffic());
    }

    #[test]
    fn only_the_active_path_carries_bandwidth() {
        let trx = OcsTrx::new();
        assert_eq!(trx.bandwidth_on(PathId::External1), Gbps(800.0));
        assert_eq!(trx.bandwidth_on(PathId::External2), Gbps::ZERO);
        assert_eq!(trx.bandwidth_on(PathId::Loopback), Gbps::ZERO);
        let total: f64 = PathId::ALL
            .iter()
            .map(|&p| trx.bandwidth_on(p).value())
            .sum();
        assert_eq!(total, 800.0);
    }

    #[test]
    fn reconfiguration_latency_is_within_published_window() {
        let mut trx = OcsTrx::new();
        let t = trx.reconfigure(PathId::External2).unwrap();
        assert!(t.value() >= 60.0 && t.value() <= 80.0, "latency {t}");
        let t = trx.reconfigure(PathId::Loopback).unwrap();
        assert!(t.value() >= 60.0 && t.value() <= 80.0, "latency {t}");
        assert_eq!(trx.reconfiguration_count(), 2);
        assert!(trx.total_reconfiguration_time().value() >= 120.0);
    }

    #[test]
    fn reactivating_the_active_path_is_free() {
        let mut trx = OcsTrx::new();
        assert_eq!(
            trx.reconfigure(PathId::External1).unwrap(),
            Microseconds::ZERO
        );
        assert_eq!(trx.reconfiguration_count(), 0);
    }

    #[test]
    fn reconfiguration_moves_the_full_bandwidth() {
        let mut trx = OcsTrx::new();
        trx.reconfigure(PathId::External2).unwrap();
        assert_eq!(trx.bandwidth_on(PathId::External2), Gbps(800.0));
        assert_eq!(trx.bandwidth_on(PathId::External1), Gbps::ZERO);
        assert_eq!(trx.path_state(PathId::External1), PathState::Standby);
        assert_eq!(trx.path_state(PathId::External2), PathState::Active);
    }

    #[test]
    fn down_paths_cannot_be_activated_until_repaired() {
        let mut trx = OcsTrx::new();
        trx.mark_down(PathId::External2);
        assert!(trx.reconfigure(PathId::External2).is_err());
        trx.mark_repaired(PathId::External2);
        assert!(trx.reconfigure(PathId::External2).is_ok());
    }

    #[test]
    fn losing_the_active_path_stops_traffic() {
        let mut trx = OcsTrx::new();
        trx.mark_down(PathId::External1);
        assert!(!trx.is_carrying_traffic());
        assert_eq!(trx.bandwidth_on(PathId::External1), Gbps::ZERO);
        // Failing over to the backup path restores traffic.
        trx.reconfigure(PathId::External2).unwrap();
        assert!(trx.is_carrying_traffic());
    }

    #[test]
    fn loopback_path_has_higher_insertion_loss() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut trx = OcsTrx::new();
        let cond = OpticalConditions::room_temperature();
        let ext_losses: f64 = (0..200)
            .map(|_| trx.insertion_loss_db(cond, &mut rng))
            .sum::<f64>()
            / 200.0;
        trx.reconfigure(PathId::Loopback).unwrap();
        let loop_losses: f64 = (0..200)
            .map(|_| trx.insertion_loss_db(cond, &mut rng))
            .sum::<f64>()
            / 200.0;
        assert!(loop_losses > ext_losses);
        assert!(ext_losses > 2.5 && ext_losses < 4.0);
    }

    #[test]
    fn power_stays_within_qsfp_dd_budget_across_paths() {
        let mut trx = OcsTrx::new();
        for path in PathId::ALL {
            trx.mark_repaired(path);
            trx.reconfigure(path).unwrap();
            for temp in [0.0, 25.0, 50.0, 85.0] {
                assert!(trx.power(temp).value() < 12.0);
            }
        }
    }

    #[test]
    fn expected_ber_is_zero_at_room_temperature() {
        let trx = OcsTrx::new();
        assert_eq!(trx.expected_ber(OpticalConditions::room_temperature()), 0.0);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let mut cfg = TrxConfig::qsfp_dd_800g();
        cfg.lanes = 3;
        assert!(OcsTrx::with_config(cfg).is_err());
        let mut cfg = TrxConfig::qsfp_dd_800g();
        cfg.line_rate = Gbps(0.0);
        assert!(OcsTrx::with_config(cfg).is_err());
        let mut cfg = TrxConfig::qsfp_dd_800g();
        cfg.reconfig_max = Microseconds(10.0);
        assert!(OcsTrx::with_config(cfg).is_err());
    }
}
