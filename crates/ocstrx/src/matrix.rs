//! The MZI switch matrix on the OCSTrx Photonic Integrated Circuit.
//!
//! Following Fig 3 of the paper, the Tx light path of each lane first meets two
//! *routing* MZI elements that decide whether the signal leaves through external
//! output 1, external output 2, or enters the *internal loopback* fabric. The
//! loopback fabric is an `N×N` MZI matrix (a Beneš-style multistage network in
//! our model) that lets an upper-half lane be connected to a lower-half lane —
//! the *cross-lane loopback* used to stitch GPU-level rings inside a node.
//!
//! The matrix model answers three questions for the rest of the simulator:
//!
//! 1. *Routing*: given the element states, which output does each input lane
//!    reach? (Must be a permutation — two lanes can never collide on one port.)
//! 2. *Stage count*: how many MZI elements does the light traverse on each kind
//!    of path? This drives the insertion-loss model.
//! 3. *Reconfiguration time*: the slowest element that has to move bounds the
//!    optical part of the 60–80 µs fast-switch latency.

use crate::mzi::{MziElement, MziState};
use crate::path::PathId;
use hbd_types::{HbdError, Result};
use serde::{Deserialize, Serialize};

/// Destination of a lane after the two front routing elements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LaneTarget {
    /// The lane is steered to one of the external fiber outputs.
    External(PathId),
    /// The lane enters the internal loopback matrix and exits on `partner`
    /// (a lane index in the opposite half).
    Loopback {
        /// The lane on the opposite half of the SerDes that this lane is
        /// cross-connected to.
        partner: usize,
    },
}

/// The complete switch fabric of one OCSTrx: per-lane front routing elements
/// plus the shared `N×N` cross-lane loopback matrix.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MziSwitchMatrix {
    lanes: usize,
    /// Two routing elements per lane (stage that selects external-1 / external-2
    /// / loopback).
    front: Vec<[MziElement; 2]>,
    /// Elements of the internal loopback Beneš network. `2 * stages_per_lane`
    /// elements are charged to each loopback connection.
    loopback_stages: usize,
    loopback_elements: Vec<MziElement>,
    /// Current lane targets.
    targets: Vec<LaneTarget>,
}

impl MziSwitchMatrix {
    /// Creates a matrix for `lanes` SerDes lanes (8 for a QSFP-DD 800G module).
    ///
    /// `lanes` must be even and at least 2, because the cross-lane loopback
    /// connects a lane in the upper half to a lane in the lower half.
    pub fn new(lanes: usize) -> Result<Self> {
        if lanes < 2 || !lanes.is_multiple_of(2) {
            return Err(HbdError::invalid_config(format!(
                "MZI matrix needs an even number of lanes >= 2, got {lanes}"
            )));
        }
        // A Beneš network over N/2 upper and N/2 lower lanes has
        // 2*ceil(log2(N/2)) + 1 stages; we keep the element pool sized
        // accordingly so the loss/power accounting is realistic.
        let half = lanes / 2;
        let loopback_stages = if half <= 1 {
            1
        } else {
            2 * (usize::BITS - (half - 1).leading_zeros()) as usize + 1
        };
        let loopback_elements = (0..loopback_stages * half)
            .map(|_| MziElement::new())
            .collect();
        let targets = (0..lanes)
            .map(|_| LaneTarget::External(PathId::External1))
            .collect();
        Ok(MziSwitchMatrix {
            lanes,
            front: (0..lanes)
                .map(|_| [MziElement::new(), MziElement::new()])
                .collect(),
            loopback_stages,
            loopback_elements,
            targets,
        })
    }

    /// Number of SerDes lanes.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Number of stages of the internal loopback network.
    pub fn loopback_stages(&self) -> usize {
        self.loopback_stages
    }

    /// Current target of `lane`.
    pub fn target(&self, lane: usize) -> Result<LaneTarget> {
        self.targets.get(lane).copied().ok_or_else(|| {
            HbdError::unknown_entity(format!("lane {lane} of {}-lane matrix", self.lanes))
        })
    }

    /// Steers `lane` to an external output. Returns the settling time in
    /// microseconds of the slowest element that had to move.
    pub fn steer_external(&mut self, lane: usize, path: PathId) -> Result<f64> {
        if path == PathId::Loopback {
            return Err(HbdError::invalid_operation(
                "use steer_loopback to select the internal loopback path",
            ));
        }
        self.check_lane(lane)?;
        let desired = match path {
            PathId::External1 => [MziState::Bar, MziState::Bar],
            PathId::External2 => [MziState::Bar, MziState::Cross],
            PathId::Loopback => unreachable!(),
        };
        let settle = self.apply_front(lane, desired);
        self.targets[lane] = LaneTarget::External(path);
        Ok(settle)
    }

    /// Cross-connects `lane` with `partner` through the internal loopback
    /// matrix. The two lanes must be in opposite halves of the SerDes (that is
    /// what "cross-lane" means on the UBB baseboard: one GPU drives the upper
    /// half, the other the lower half). Returns the settling time in µs.
    pub fn steer_loopback(&mut self, lane: usize, partner: usize) -> Result<f64> {
        self.check_lane(lane)?;
        self.check_lane(partner)?;
        if lane == partner {
            return Err(HbdError::invalid_operation(
                "a lane cannot loop back to itself",
            ));
        }
        let half = self.lanes / 2;
        let same_half = (lane < half) == (partner < half);
        if same_half {
            return Err(HbdError::invalid_operation(format!(
                "cross-lane loopback requires lanes in opposite halves (got {lane} and {partner} of a {}-lane module)",
                self.lanes
            )));
        }
        // If the partner is already looped to a third lane, reject: optical
        // paths cannot merge.
        if let LaneTarget::Loopback { partner: existing } = self.targets[partner] {
            if existing != lane {
                return Err(HbdError::invalid_operation(format!(
                    "lane {partner} is already cross-connected to lane {existing}"
                )));
            }
        }
        let settle_a = self.apply_front(lane, [MziState::Cross, MziState::Bar]);
        let settle_b = self.apply_front(partner, [MziState::Cross, MziState::Bar]);
        // Reconfigure the internal network: charge the settling time of one
        // column of elements (they all move concurrently).
        let settle_matrix = self
            .loopback_elements
            .first()
            .map(|e| e.switch_time_us())
            .unwrap_or(0.0);
        self.targets[lane] = LaneTarget::Loopback { partner };
        self.targets[partner] = LaneTarget::Loopback { partner: lane };
        Ok(settle_a.max(settle_b).max(settle_matrix))
    }

    /// Number of MZI elements traversed by light on the given kind of path.
    ///
    /// External paths cross only the two front routing elements (the design
    /// goal called out in §4.1: "reduce stages count and light attenuation of
    /// output 1&2, while ensuring consistent light attenuation for them").
    /// Loopback paths additionally cross the internal multistage network.
    pub fn stages_for(&self, path: PathId) -> usize {
        match path {
            PathId::External1 | PathId::External2 => 2,
            PathId::Loopback => 2 + self.loopback_stages,
        }
    }

    /// Total insertion loss in dB contributed by the MZI elements on `path`
    /// (waveguide/coupling losses are added by the optics model).
    pub fn element_loss_db(&self, path: PathId) -> f64 {
        let per_element = MziElement::new().insertion_loss_db();
        self.stages_for(path) as f64 * per_element
    }

    /// Total heater power currently dissipated by the fabric, in milliwatts.
    pub fn heater_power_mw(&self) -> f64 {
        let front: f64 = self
            .front
            .iter()
            .flat_map(|pair| pair.iter())
            .map(|e| e.heater_power_mw())
            .sum();
        let matrix: f64 = self
            .loopback_elements
            .iter()
            .map(|e| e.heater_power_mw())
            .sum();
        front + matrix
    }

    /// Checks that the current configuration is a valid optical permutation:
    /// no two lanes steered to the same external port on the same fiber pair
    /// half, and loopback connections are symmetric.
    pub fn validate(&self) -> Result<()> {
        for (lane, target) in self.targets.iter().enumerate() {
            if let LaneTarget::Loopback { partner } = *target {
                match self.targets.get(partner) {
                    Some(LaneTarget::Loopback { partner: back }) if *back == lane => {}
                    _ => {
                        return Err(HbdError::invalid_operation(format!(
                            "loopback of lane {lane} to {partner} is not symmetric"
                        )))
                    }
                }
            }
        }
        Ok(())
    }

    fn check_lane(&self, lane: usize) -> Result<()> {
        if lane >= self.lanes {
            Err(HbdError::unknown_entity(format!(
                "lane {lane} of {}-lane matrix",
                self.lanes
            )))
        } else {
            Ok(())
        }
    }

    fn apply_front(&mut self, lane: usize, desired: [MziState; 2]) -> f64 {
        let pair = &mut self.front[lane];
        let t0 = pair[0].set_state(desired[0]);
        let t1 = pair[1].set_state(desired[1]);
        t0.max(t1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qsfp_dd_module_has_eight_lanes() {
        let matrix = MziSwitchMatrix::new(8).unwrap();
        assert_eq!(matrix.lanes(), 8);
        assert!(matrix.loopback_stages() >= 3);
    }

    #[test]
    fn odd_or_tiny_lane_counts_are_rejected() {
        assert!(MziSwitchMatrix::new(0).is_err());
        assert!(MziSwitchMatrix::new(1).is_err());
        assert!(MziSwitchMatrix::new(7).is_err());
        assert!(MziSwitchMatrix::new(2).is_ok());
    }

    #[test]
    fn steering_external_changes_target_and_costs_time() {
        let mut matrix = MziSwitchMatrix::new(8).unwrap();
        let t = matrix.steer_external(0, PathId::External2).unwrap();
        assert!(t > 0.0);
        assert_eq!(
            matrix.target(0).unwrap(),
            LaneTarget::External(PathId::External2)
        );
        // Re-applying the same target costs no settling time.
        assert_eq!(matrix.steer_external(0, PathId::External2).unwrap(), 0.0);
    }

    #[test]
    fn steer_external_rejects_loopback_path() {
        let mut matrix = MziSwitchMatrix::new(8).unwrap();
        assert!(matrix.steer_external(0, PathId::Loopback).is_err());
    }

    #[test]
    fn loopback_connects_opposite_halves_symmetrically() {
        let mut matrix = MziSwitchMatrix::new(8).unwrap();
        let t = matrix.steer_loopback(1, 5).unwrap();
        assert!(t > 0.0);
        assert_eq!(
            matrix.target(1).unwrap(),
            LaneTarget::Loopback { partner: 5 }
        );
        assert_eq!(
            matrix.target(5).unwrap(),
            LaneTarget::Loopback { partner: 1 }
        );
        assert!(matrix.validate().is_ok());
    }

    #[test]
    fn loopback_within_one_half_is_rejected() {
        let mut matrix = MziSwitchMatrix::new(8).unwrap();
        assert!(matrix.steer_loopback(0, 1).is_err());
        assert!(matrix.steer_loopback(4, 7).is_err());
        assert!(matrix.steer_loopback(3, 3).is_err());
    }

    #[test]
    fn loopback_cannot_steal_a_partner() {
        let mut matrix = MziSwitchMatrix::new(8).unwrap();
        matrix.steer_loopback(0, 4).unwrap();
        assert!(matrix.steer_loopback(1, 4).is_err());
        // But re-affirming the existing pairing is fine.
        assert!(matrix.steer_loopback(4, 0).is_ok());
    }

    #[test]
    fn external_paths_have_fewer_stages_than_loopback() {
        let matrix = MziSwitchMatrix::new(8).unwrap();
        assert_eq!(matrix.stages_for(PathId::External1), 2);
        assert_eq!(matrix.stages_for(PathId::External2), 2);
        assert!(matrix.stages_for(PathId::Loopback) > 2);
        assert!(
            matrix.element_loss_db(PathId::Loopback) > matrix.element_loss_db(PathId::External1)
        );
        // Design goal: both external outputs see identical attenuation.
        assert_eq!(
            matrix.element_loss_db(PathId::External1),
            matrix.element_loss_db(PathId::External2)
        );
    }

    #[test]
    fn heater_power_grows_when_elements_are_crossed() {
        let mut matrix = MziSwitchMatrix::new(8).unwrap();
        let idle = matrix.heater_power_mw();
        matrix.steer_external(0, PathId::External2).unwrap();
        assert!(matrix.heater_power_mw() > idle);
    }

    #[test]
    fn unknown_lane_is_reported() {
        let mut matrix = MziSwitchMatrix::new(4).unwrap();
        assert!(matrix.target(9).is_err());
        assert!(matrix.steer_external(9, PathId::External1).is_err());
        assert!(matrix.steer_loopback(0, 9).is_err());
    }
}
