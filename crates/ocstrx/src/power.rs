//! Power model of the OCSTrx (Fig 10b and the QSFP-DD budget discussion).
//!
//! Published numbers (§5.1):
//!
//! * the peripheral circuitry (laser, driver, TIA, DSP) consumes **8.5 W**
//!   under the 8 × 112 G configuration,
//! * the *core module* (the OCS switch fabric plus its controller) consumes
//!   **less than 3.2 W** across the tested temperature range with all three
//!   paths exercised, with per-path power between roughly 2.9 W and 3.2 W and a
//!   mild upward trend with temperature (Fig 10b),
//! * the total stays below the 12 W available to a QSFP-DD 800G module.

use crate::path::PathId;
use hbd_types::Watts;
use serde::{Deserialize, Serialize};

/// Power model for one OCSTrx module.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerModel {
    /// Power of the non-OCS circuitry (laser, modulator driver, TIA, SerDes).
    pub peripheral: Watts,
    /// Core-module power at 25 °C when the loopback path (the deepest optical
    /// path) is active.
    pub core_loopback_at_25c: Watts,
    /// Reduction of core power when an external path (fewer MZI stages) is
    /// active instead of the loopback.
    pub external_path_discount: Watts,
    /// Increase of core power per °C above 25 °C (TEC / heater compensation).
    pub temperature_slope_w_per_c: f64,
    /// Power budget of the QSFP-DD 800G form factor.
    pub qsfp_dd_budget: Watts,
}

impl PowerModel {
    /// Model calibrated to the paper's measurements.
    pub fn paper_calibrated() -> Self {
        PowerModel {
            peripheral: Watts(8.5),
            core_loopback_at_25c: Watts(3.05),
            external_path_discount: Watts(0.08),
            temperature_slope_w_per_c: 0.0018,
            qsfp_dd_budget: Watts(12.0),
        }
    }

    /// Core-module power with `path` active at `temperature_c`.
    pub fn core_power(&self, path: PathId, temperature_c: f64) -> Watts {
        let base = match path {
            PathId::Loopback => self.core_loopback_at_25c,
            PathId::External1 | PathId::External2 => {
                self.core_loopback_at_25c - self.external_path_discount
            }
        };
        let delta = self.temperature_slope_w_per_c * (temperature_c - 25.0);
        Watts((base.value() + delta).max(0.0))
    }

    /// Total module power with `path` active at `temperature_c`.
    pub fn total_power(&self, path: PathId, temperature_c: f64) -> Watts {
        self.peripheral + self.core_power(path, temperature_c)
    }

    /// Whether the module stays within the QSFP-DD power budget under the given
    /// conditions.
    pub fn within_budget(&self, path: PathId, temperature_c: f64) -> bool {
        self.total_power(path, temperature_c).value() <= self.qsfp_dd_budget.value()
    }

    /// Worst-case core power across all paths at the given temperature; this is
    /// the number the paper quotes as "less than 3.2 W".
    pub fn worst_case_core_power(&self, temperature_c: f64) -> Watts {
        PathId::ALL
            .iter()
            .map(|&p| self.core_power(p, temperature_c))
            .fold(Watts::ZERO, Watts::max)
    }
}

impl Default for PowerModel {
    fn default() -> Self {
        Self::paper_calibrated()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn core_power_stays_below_published_bound() {
        let model = PowerModel::paper_calibrated();
        for temp in [0.0, 25.0, 50.0, 85.0] {
            assert!(
                model.worst_case_core_power(temp).value() <= 3.2,
                "core power exceeded 3.2 W at {temp}C"
            );
            assert!(model.worst_case_core_power(temp).value() >= 2.8);
        }
    }

    #[test]
    fn loopback_path_draws_the_most_power() {
        let model = PowerModel::paper_calibrated();
        let loopback = model.core_power(PathId::Loopback, 25.0);
        let ext1 = model.core_power(PathId::External1, 25.0);
        let ext2 = model.core_power(PathId::External2, 25.0);
        assert!(loopback.value() > ext1.value());
        assert_eq!(ext1, ext2);
    }

    #[test]
    fn power_increases_with_temperature() {
        let model = PowerModel::paper_calibrated();
        let cold = model.core_power(PathId::Loopback, 0.0);
        let hot = model.core_power(PathId::Loopback, 85.0);
        assert!(hot.value() > cold.value());
    }

    #[test]
    fn total_power_respects_qsfp_dd_budget() {
        let model = PowerModel::paper_calibrated();
        for temp in [0.0, 25.0, 50.0, 85.0] {
            for path in PathId::ALL {
                assert!(model.within_budget(path, temp));
                assert!(model.total_power(path, temp).value() < 12.0);
                assert!(model.total_power(path, temp).value() > 10.0);
            }
        }
    }

    #[test]
    fn pathological_temperature_never_goes_negative() {
        let model = PowerModel::paper_calibrated();
        assert!(model.core_power(PathId::External1, -4000.0).value() >= 0.0);
    }
}
