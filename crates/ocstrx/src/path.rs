//! The three communication paths of an OCSTrx and their exclusive-activation
//! state machine.
//!
//! §4.1/§3 of the paper: an OCSTrx offers a *cross-lane loopback* path (Path 3)
//! used to close GPU rings inside a node, and *two external paths* (Paths 1 and
//! 2) connecting to neighbour nodes. The paths share the transceiver bandwidth
//! by time division: **exactly one** path carries traffic at any instant, so the
//! full GPU bandwidth is always concentrated on the active path ("activating one
//! external path completely disables the other").

use serde::{Deserialize, Serialize};
use std::fmt;

/// One of the three selectable paths of an OCSTrx.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum PathId {
    /// External path 1 — by convention the *primary* neighbour link
    /// (distance ±1 in the K-Hop Ring).
    External1,
    /// External path 2 — by convention a *backup* neighbour link
    /// (distance ±2.. in the K-Hop Ring).
    External2,
    /// Internal cross-lane loopback, closing a GPU-level ring inside the node.
    Loopback,
}

impl PathId {
    /// All three paths, in the order used by the paper's figures
    /// (Path 1, Path 2, Path 3).
    pub const ALL: [PathId; 3] = [PathId::External1, PathId::External2, PathId::Loopback];

    /// Returns `true` for the two fiber-facing paths.
    pub fn is_external(self) -> bool {
        matches!(self, PathId::External1 | PathId::External2)
    }

    /// Paper numbering: Path 1, Path 2, Path 3.
    pub fn paper_number(self) -> usize {
        match self {
            PathId::External1 => 1,
            PathId::External2 => 2,
            PathId::Loopback => 3,
        }
    }
}

impl fmt::Display for PathId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Path {}", self.paper_number())
    }
}

/// Activation state of one path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PathState {
    /// The path is selected and carries the full transceiver bandwidth.
    Active,
    /// The path is physically wired but not selected; it carries no traffic and
    /// can be activated by a reconfiguration (a backup link).
    Standby,
    /// The path's far end is known to be unusable (faulty neighbour, unplugged
    /// fiber). It cannot be activated until repaired.
    Down,
}

impl PathState {
    /// Whether traffic can flow on a path in this state.
    pub fn carries_traffic(self) -> bool {
        matches!(self, PathState::Active)
    }

    /// Whether the path can be selected by a reconfiguration.
    pub fn is_selectable(self) -> bool {
        matches!(self, PathState::Active | PathState::Standby)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_numbering_matches_figure_2() {
        assert_eq!(PathId::External1.paper_number(), 1);
        assert_eq!(PathId::External2.paper_number(), 2);
        assert_eq!(PathId::Loopback.paper_number(), 3);
        assert_eq!(PathId::External1.to_string(), "Path 1");
    }

    #[test]
    fn externality_classification() {
        assert!(PathId::External1.is_external());
        assert!(PathId::External2.is_external());
        assert!(!PathId::Loopback.is_external());
    }

    #[test]
    fn all_lists_each_path_once() {
        assert_eq!(PathId::ALL.len(), 3);
        let mut sorted = PathId::ALL.to_vec();
        sorted.dedup();
        assert_eq!(sorted.len(), 3);
    }

    #[test]
    fn traffic_and_selectability_rules() {
        assert!(PathState::Active.carries_traffic());
        assert!(!PathState::Standby.carries_traffic());
        assert!(!PathState::Down.carries_traffic());
        assert!(PathState::Active.is_selectable());
        assert!(PathState::Standby.is_selectable());
        assert!(!PathState::Down.is_selectable());
    }
}
