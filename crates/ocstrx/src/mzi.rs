//! Mach–Zehnder interferometer (MZI) switch element.
//!
//! The OCSTrx steers light with a cascade of 2×2 MZI elements. Each element
//! splits the incoming light over two *phase arms*; a thermo-optic (TO) heater
//! on one arm controls the relative phase, and the output combiner interferes
//! the two arms so that (ideally) all optical power exits through one of the two
//! output ports (§4.1, Fig 3b).
//!
//! The model here captures what the rest of the simulator needs:
//!
//! * the **bar / cross routing state** driven by the heater,
//! * the **switching time** of the TO phase shifter (tens of microseconds — the
//!   dominant term of the 60–80 µs reconfiguration latency),
//! * the **per-element insertion loss** and **crosstalk** (extinction ratio),
//!   which accumulate along the light path and feed the optics model.

use serde::{Deserialize, Serialize};

/// Routing state of a 2×2 MZI element.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MziState {
    /// Input 0 → output 0, input 1 → output 1 (no phase difference).
    Bar,
    /// Input 0 → output 1, input 1 → output 0 (π phase difference).
    Cross,
}

impl MziState {
    /// Output port that input `input` (0 or 1) is routed to in this state.
    pub fn route(self, input: usize) -> usize {
        assert!(input < 2, "MZI element has two inputs");
        match self {
            MziState::Bar => input,
            MziState::Cross => 1 - input,
        }
    }

    /// The opposite state.
    pub fn toggled(self) -> Self {
        match self {
            MziState::Bar => MziState::Cross,
            MziState::Cross => MziState::Bar,
        }
    }
}

/// A single thermo-optically tuned 2×2 MZI switch element.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MziElement {
    state: MziState,
    /// Insertion loss contributed by this element when light passes through it,
    /// in dB. Typical SiPh MZI elements contribute a fraction of a dB.
    insertion_loss_db: f64,
    /// Extinction ratio in dB: how much the unwanted output port is suppressed.
    extinction_ratio_db: f64,
    /// Heater drive power required to hold the Cross state, in milliwatts.
    heater_power_mw: f64,
    /// Thermo-optic switching time in microseconds.
    switch_time_us: f64,
}

impl MziElement {
    /// Default element parameters used by the OCSTrx model: 0.35 dB insertion
    /// loss, 25 dB extinction ratio, 20 mW heater drive and 30 µs TO response.
    pub fn new() -> Self {
        MziElement {
            state: MziState::Bar,
            insertion_loss_db: 0.35,
            extinction_ratio_db: 25.0,
            heater_power_mw: 20.0,
            switch_time_us: 30.0,
        }
    }

    /// Creates an element with explicit optical parameters.
    pub fn with_parameters(
        insertion_loss_db: f64,
        extinction_ratio_db: f64,
        heater_power_mw: f64,
        switch_time_us: f64,
    ) -> Self {
        assert!(
            insertion_loss_db >= 0.0,
            "insertion loss cannot be negative"
        );
        assert!(
            extinction_ratio_db > 0.0,
            "extinction ratio must be positive"
        );
        assert!(switch_time_us > 0.0, "switch time must be positive");
        MziElement {
            state: MziState::Bar,
            insertion_loss_db,
            extinction_ratio_db,
            heater_power_mw,
            switch_time_us,
        }
    }

    /// Current routing state.
    pub fn state(&self) -> MziState {
        self.state
    }

    /// Sets the routing state, returning the time the thermo-optic phase arm
    /// needs to settle (zero if the state does not change).
    pub fn set_state(&mut self, state: MziState) -> f64 {
        if self.state == state {
            0.0
        } else {
            self.state = state;
            self.switch_time_us
        }
    }

    /// Routes an input port (0/1) to an output port according to the current
    /// state.
    pub fn route(&self, input: usize) -> usize {
        self.state.route(input)
    }

    /// Insertion loss of this element in dB.
    pub fn insertion_loss_db(&self) -> f64 {
        self.insertion_loss_db
    }

    /// Extinction ratio (crosstalk suppression) in dB.
    pub fn extinction_ratio_db(&self) -> f64 {
        self.extinction_ratio_db
    }

    /// Heater power currently dissipated, in milliwatts. The Bar state is the
    /// relaxed state and dissipates no heater power.
    pub fn heater_power_mw(&self) -> f64 {
        match self.state {
            MziState::Bar => 0.0,
            MziState::Cross => self.heater_power_mw,
        }
    }

    /// Thermo-optic switching time in microseconds.
    pub fn switch_time_us(&self) -> f64 {
        self.switch_time_us
    }
}

impl Default for MziElement {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bar_state_routes_straight_through() {
        assert_eq!(MziState::Bar.route(0), 0);
        assert_eq!(MziState::Bar.route(1), 1);
    }

    #[test]
    fn cross_state_swaps_ports() {
        assert_eq!(MziState::Cross.route(0), 1);
        assert_eq!(MziState::Cross.route(1), 0);
    }

    #[test]
    #[should_panic(expected = "two inputs")]
    fn route_rejects_out_of_range_input() {
        let _ = MziState::Bar.route(2);
    }

    #[test]
    fn toggling_is_an_involution() {
        assert_eq!(MziState::Bar.toggled(), MziState::Cross);
        assert_eq!(MziState::Cross.toggled().toggled(), MziState::Cross);
    }

    #[test]
    fn switching_costs_time_only_on_change() {
        let mut element = MziElement::new();
        assert_eq!(element.state(), MziState::Bar);
        assert_eq!(element.set_state(MziState::Bar), 0.0);
        let t = element.set_state(MziState::Cross);
        assert!(t > 0.0);
        assert_eq!(element.state(), MziState::Cross);
        assert_eq!(element.set_state(MziState::Cross), 0.0);
    }

    #[test]
    fn heater_power_only_in_cross_state() {
        let mut element = MziElement::new();
        assert_eq!(element.heater_power_mw(), 0.0);
        element.set_state(MziState::Cross);
        assert!(element.heater_power_mw() > 0.0);
    }

    #[test]
    fn custom_parameters_are_preserved() {
        let element = MziElement::with_parameters(0.5, 30.0, 15.0, 25.0);
        assert_eq!(element.insertion_loss_db(), 0.5);
        assert_eq!(element.extinction_ratio_db(), 30.0);
        assert_eq!(element.switch_time_us(), 25.0);
    }

    #[test]
    #[should_panic(expected = "insertion loss")]
    fn negative_insertion_loss_is_rejected() {
        let _ = MziElement::with_parameters(-0.1, 25.0, 20.0, 30.0);
    }
}
