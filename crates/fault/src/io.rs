//! Serialisation of fault traces.
//!
//! The paper open-sources its 348-day production trace as a flat table of
//! fault events (faulty node id, fault start, fault end). This module
//! reads and writes that format as CSV — one event per line, with the cluster
//! size and observation window carried in comment headers — plus JSON via
//! `serde` for programmatic exchange, so externally collected traces can be
//! replayed through every fault-resilience experiment.

use crate::event::FaultEvent;
use crate::trace::FaultTrace;
use hbd_types::{HbdError, NodeId, Result, Seconds};

/// The CSV column header line.
pub const CSV_HEADER: &str = "node,fault_start_s,fault_end_s";

/// Serialises a trace to the open-trace CSV format.
///
/// The cluster size and observation window are emitted as `#`-prefixed
/// comment lines so the file round-trips without an external manifest.
pub fn to_csv(trace: &FaultTrace) -> String {
    let mut out = String::new();
    out.push_str(&format!("# nodes={}\n", trace.nodes()));
    out.push_str(&format!("# duration_s={}\n", trace.duration().value()));
    out.push_str(CSV_HEADER);
    out.push('\n');
    for event in trace.events() {
        out.push_str(&format!(
            "{},{},{}\n",
            event.node.index(),
            event.start.value(),
            event.end.value()
        ));
    }
    out
}

/// Parses a trace from the open-trace CSV format produced by [`to_csv`] (or a
/// hand-written file following the same schema).
pub fn from_csv(text: &str) -> Result<FaultTrace> {
    let mut nodes: Option<usize> = None;
    let mut duration: Option<f64> = None;
    let mut events = Vec::new();
    for (line_no, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let comment = comment.trim();
            if let Some(value) = comment.strip_prefix("nodes=") {
                nodes = Some(parse_index_field(value, line_no, "nodes")?);
            } else if let Some(value) = comment.strip_prefix("duration_s=") {
                duration = Some(parse_field(value, line_no, "duration_s")?);
            }
            continue;
        }
        if line == CSV_HEADER {
            continue;
        }
        let mut fields = line.split(',');
        let node = fields
            .next()
            .ok_or_else(|| bad_line(line_no, "missing node column"))?;
        let start = fields
            .next()
            .ok_or_else(|| bad_line(line_no, "missing fault_start_s column"))?;
        let end = fields
            .next()
            .ok_or_else(|| bad_line(line_no, "missing fault_end_s column"))?;
        if fields.next().is_some() {
            return Err(bad_line(line_no, "too many columns"));
        }
        let node = parse_index_field(node, line_no, "node")?;
        let start = parse_field(start, line_no, "fault_start_s")?;
        let end = parse_field(end, line_no, "fault_end_s")?;
        events.push(FaultEvent::new(NodeId(node), Seconds(start), Seconds(end)));
    }
    let nodes = nodes
        .ok_or_else(|| HbdError::invalid_config("trace CSV is missing the '# nodes=' header"))?;
    let duration = duration.ok_or_else(|| {
        HbdError::invalid_config("trace CSV is missing the '# duration_s=' header")
    })?;
    FaultTrace::new(nodes, Seconds(duration), events)
}

/// Serialises a trace to pretty-printed JSON.
pub fn to_json(trace: &FaultTrace) -> Result<String> {
    serde_json::to_string_pretty(trace)
        .map_err(|e| HbdError::invalid_operation(format!("JSON serialisation failed: {e}")))
}

/// Parses a trace from JSON produced by [`to_json`].
pub fn from_json(text: &str) -> Result<FaultTrace> {
    serde_json::from_str(text)
        .map_err(|e| HbdError::invalid_config(format!("invalid trace JSON: {e}")))
}

/// Integer columns (node ids, node counts) must parse exactly: going through
/// `f64` would silently truncate `3.9` to 3 and lose precision above 2^53.
fn parse_index_field(value: &str, line_no: usize, name: &str) -> Result<usize> {
    value.trim().parse::<usize>().map_err(|_| {
        HbdError::invalid_config(format!(
            "line {}: cannot parse {name} from {value:?} (expected a non-negative integer)",
            line_no + 1
        ))
    })
}

fn parse_field(value: &str, line_no: usize, name: &str) -> Result<f64> {
    value.trim().parse::<f64>().map_err(|_| {
        HbdError::invalid_config(format!(
            "line {}: cannot parse {name} from {value:?}",
            line_no + 1
        ))
    })
}

fn bad_line(line_no: usize, reason: &str) -> HbdError {
    HbdError::invalid_config(format!("line {}: {reason}", line_no + 1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{GeneratorConfig, TraceGenerator};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_trace() -> FaultTrace {
        FaultTrace::new(
            8,
            Seconds::from_days(2.0),
            vec![
                FaultEvent::new(NodeId(1), Seconds(100.0), Seconds(4000.0)),
                FaultEvent::new(NodeId(5), Seconds(50_000.0), Seconds(90_000.0)),
            ],
        )
        .expect("valid trace")
    }

    #[test]
    fn csv_rejects_non_integer_node_ids() {
        let text = "# nodes=8\n# duration_s=1000\nnode,fault_start_s,fault_end_s\n3.9,0,60\n";
        let err = from_csv(text).unwrap_err();
        assert!(err.to_string().contains("cannot parse node"), "{err}");
    }

    #[test]
    fn csv_round_trip_preserves_the_trace() {
        let trace = sample_trace();
        let csv = to_csv(&trace);
        assert!(csv.starts_with("# nodes=8\n"));
        assert!(csv.contains(CSV_HEADER));
        let back = from_csv(&csv).unwrap();
        assert_eq!(back, trace);
    }

    #[test]
    fn json_round_trip_preserves_the_trace() {
        let trace = sample_trace();
        let back = from_json(&to_json(&trace).unwrap()).unwrap();
        assert_eq!(back, trace);
    }

    #[test]
    fn generated_trace_round_trips_through_csv() {
        let config = GeneratorConfig::paper_8gpu_cluster();
        let generator = TraceGenerator::new(config).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let trace = generator.generate(&mut rng);
        let back = from_csv(&to_csv(&trace)).unwrap();
        assert_eq!(back.len(), trace.len());
        assert_eq!(back.nodes(), trace.nodes());
        // Fault ratio at a few probe points must match exactly.
        for day in [10.0, 100.0, 300.0] {
            let t = Seconds::from_days(day);
            assert_eq!(back.faulty_nodes_at(t), trace.faulty_nodes_at(t));
        }
    }

    #[test]
    fn csv_tolerates_blank_lines_and_requires_headers() {
        let csv = "# nodes=4\n\n# duration_s=1000\nnode,fault_start_s,fault_end_s\n2,10,20\n";
        let trace = from_csv(csv).unwrap();
        assert_eq!(trace.nodes(), 4);
        assert_eq!(trace.len(), 1);

        assert!(from_csv("node,fault_start_s,fault_end_s\n1,2,3\n").is_err());
        assert!(from_csv("# nodes=4\n# duration_s=x\n").is_err());
        assert!(from_csv("# nodes=4\n# duration_s=100\n1,2\n").is_err());
        assert!(from_csv("# nodes=4\n# duration_s=100\n1,2,3,4\n").is_err());
    }

    #[test]
    fn malformed_events_are_reported_with_line_numbers() {
        let csv = "# nodes=4\n# duration_s=100\nnode,fault_start_s,fault_end_s\nabc,1,2\n";
        let err = from_csv(csv).unwrap_err();
        assert!(err.to_string().contains("line 4"), "{err}");
    }
}
