//! The fault-event data model.
//!
//! Each record of the production trace carries the faulty node's identifier,
//! the time the fault was detected, and the time it was repaired (Appendix A:
//! "fault start time, fault end time, and the ID of the faulty node").

use hbd_types::{NodeId, Seconds};
use serde::{Deserialize, Serialize};

/// One fault event: a node leaving service and returning after repair.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// The node that failed.
    pub node: NodeId,
    /// When the fault started, measured from the beginning of the trace.
    pub start: Seconds,
    /// When the node returned to service.
    pub end: Seconds,
}

impl FaultEvent {
    /// Creates a fault event. `end` must not precede `start`.
    pub fn new(node: NodeId, start: Seconds, end: Seconds) -> Self {
        assert!(
            end.value() >= start.value(),
            "fault on {node} ends before it starts ({end} < {start})"
        );
        FaultEvent { node, start, end }
    }

    /// How long the node was out of service.
    pub fn duration(&self) -> Seconds {
        self.end - self.start
    }

    /// Whether the node is out of service at time `t`.
    pub fn active_at(&self, t: Seconds) -> bool {
        t.value() >= self.start.value() && t.value() < self.end.value()
    }

    /// Whether this event overlaps the half-open interval `[from, to)`.
    pub fn overlaps(&self, from: Seconds, to: Seconds) -> bool {
        self.start.value() < to.value() && self.end.value() > from.value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_and_activity() {
        let event = FaultEvent::new(NodeId(3), Seconds(100.0), Seconds(400.0));
        assert_eq!(event.duration(), Seconds(300.0));
        assert!(!event.active_at(Seconds(99.0)));
        assert!(event.active_at(Seconds(100.0)));
        assert!(event.active_at(Seconds(399.0)));
        assert!(!event.active_at(Seconds(400.0)));
    }

    #[test]
    fn overlap_is_half_open() {
        let event = FaultEvent::new(NodeId(0), Seconds(10.0), Seconds(20.0));
        assert!(event.overlaps(Seconds(0.0), Seconds(15.0)));
        assert!(event.overlaps(Seconds(15.0), Seconds(30.0)));
        assert!(event.overlaps(Seconds(0.0), Seconds(100.0)));
        assert!(!event.overlaps(Seconds(20.0), Seconds(30.0)));
        assert!(!event.overlaps(Seconds(0.0), Seconds(10.0)));
    }

    #[test]
    #[should_panic(expected = "ends before it starts")]
    fn inverted_interval_is_rejected() {
        let _ = FaultEvent::new(NodeId(0), Seconds(5.0), Seconds(1.0));
    }

    #[test]
    fn zero_length_fault_is_allowed_but_never_active() {
        let event = FaultEvent::new(NodeId(0), Seconds(5.0), Seconds(5.0));
        assert_eq!(event.duration(), Seconds(0.0));
        assert!(!event.active_at(Seconds(5.0)));
    }
}
