//! The Appendix-A conversion of an 8-GPU-node fault trace into a 4-GPU-node
//! trace.
//!
//! The production trace was collected on 8-GPU nodes, but most of the
//! evaluation simulates 4-GPU nodes (GB200-style trays). Appendix A derives the
//! conversion under the assumption that GPU faults are i.i.d.:
//!
//! * the 8-GPU node fault probability 2.33 % implies a per-GPU fault
//!   probability `p` with `1 − (1 − p)⁸ = 2.33 %`, i.e. `p ≈ 0.29 %`;
//! * a 4-GPU node then faults with probability `1 − (1 − p)⁴ ≈ 1.17 %`;
//! * by Bayes' rule, given that an 8-GPU node is faulty, each of the two 4-GPU
//!   half-nodes at the same physical position is faulty with probability
//!   `P(4-GPU | 8-GPU) = P(4-GPU) / P(8-GPU) ≈ 50.21 %`.
//!
//! The conversion therefore maps every 8-GPU node `n` onto 4-GPU nodes `2n` and
//! `2n + 1` and keeps each fault event on each half independently with that
//! probability.

use crate::event::FaultEvent;
use crate::trace::FaultTrace;
use hbd_types::NodeId;
use rand::Rng;

/// Per-GPU fault probability implied by an 8-GPU-node fault probability.
pub fn per_gpu_fault_probability(node8_fault_probability: f64) -> f64 {
    assert!(
        (0.0..1.0).contains(&node8_fault_probability),
        "probability must lie in [0, 1)"
    );
    1.0 - (1.0 - node8_fault_probability).powf(1.0 / 8.0)
}

/// 4-GPU-node fault probability implied by an 8-GPU-node fault probability.
pub fn node4_fault_probability(node8_fault_probability: f64) -> f64 {
    let p = per_gpu_fault_probability(node8_fault_probability);
    1.0 - (1.0 - p).powi(4)
}

/// The Bayesian keep probability: given a faulty 8-GPU node, the probability
/// that a specific 4-GPU half is faulty.
pub fn conversion_probability(node8_fault_probability: f64) -> f64 {
    if node8_fault_probability <= 0.0 {
        return 0.0;
    }
    node4_fault_probability(node8_fault_probability) / node8_fault_probability
}

/// Converts an 8-GPU-node fault trace into a 4-GPU-node trace with twice the
/// node count, applying the Appendix-A Bayesian thinning. Deterministic for a
/// given RNG seed.
pub fn convert_8gpu_to_4gpu<R: Rng + ?Sized>(
    trace: &FaultTrace,
    node8_fault_probability: f64,
    rng: &mut R,
) -> FaultTrace {
    let keep = conversion_probability(node8_fault_probability);
    let mut events = Vec::new();
    for event in trace.events() {
        for half in 0..2 {
            if rng.gen::<f64>() < keep {
                events.push(FaultEvent::new(
                    NodeId(event.node.index() * 2 + half),
                    event.start,
                    event.end,
                ));
            }
        }
    }
    FaultTrace::new(trace.nodes() * 2, trace.duration(), events)
        .expect("converted events stay in range")
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbd_types::Seconds;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn probabilities_match_the_appendix_numbers() {
        let p = per_gpu_fault_probability(0.0233);
        assert!((p - 0.0029).abs() < 2e-4, "per-GPU probability {p}");
        let p4 = node4_fault_probability(0.0233);
        assert!((p4 - 0.0117).abs() < 4e-4, "4-GPU node probability {p4}");
        let keep = conversion_probability(0.0233);
        assert!(
            (keep - 0.5021).abs() < 0.01,
            "conversion probability {keep}"
        );
    }

    #[test]
    fn conversion_probability_of_zero_is_zero() {
        assert_eq!(conversion_probability(0.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn invalid_probability_is_rejected() {
        let _ = per_gpu_fault_probability(1.5);
    }

    #[test]
    fn converted_trace_doubles_the_node_count() {
        let trace = FaultTrace::new(
            10,
            Seconds(1000.0),
            vec![FaultEvent::new(NodeId(3), Seconds(0.0), Seconds(100.0))],
        )
        .unwrap();
        let converted = convert_8gpu_to_4gpu(&trace, 0.0233, &mut StdRng::seed_from_u64(1));
        assert_eq!(converted.nodes(), 20);
        assert_eq!(converted.duration(), Seconds(1000.0));
        for event in converted.events() {
            assert!(event.node == NodeId(6) || event.node == NodeId(7));
            assert_eq!(event.start, Seconds(0.0));
            assert_eq!(event.end, Seconds(100.0));
        }
    }

    #[test]
    fn roughly_half_of_the_fault_mass_survives_conversion() {
        // Many events so the law of large numbers applies.
        let events: Vec<FaultEvent> = (0..100)
            .map(|n| FaultEvent::new(NodeId(n), Seconds(0.0), Seconds(10.0)))
            .collect();
        let trace = FaultTrace::new(100, Seconds(100.0), events).unwrap();
        let converted = convert_8gpu_to_4gpu(&trace, 0.0233, &mut StdRng::seed_from_u64(2));
        // 100 events x 2 halves x ~50.21% keep ~ 100 surviving events.
        let survivors = converted.len();
        assert!(
            (70..=130).contains(&survivors),
            "expected roughly 100 surviving events, got {survivors}"
        );
    }

    #[test]
    fn conversion_is_deterministic_for_a_seed() {
        let trace = FaultTrace::new(
            5,
            Seconds(50.0),
            vec![
                FaultEvent::new(NodeId(0), Seconds(0.0), Seconds(10.0)),
                FaultEvent::new(NodeId(4), Seconds(20.0), Seconds(30.0)),
            ],
        )
        .unwrap();
        let a = convert_8gpu_to_4gpu(&trace, 0.0233, &mut StdRng::seed_from_u64(9));
        let b = convert_8gpu_to_4gpu(&trace, 0.0233, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }
}
