//! Trace → discrete-event adapters for the control-plane simulator.
//!
//! A [`FaultTrace`] stores *intervals* (node, start, end); a discrete-event
//! simulator consumes *edges* (node went down at `t`, node came back at `t`).
//! [`trace_events`] performs that conversion with the same semantics as
//! [`FaultTrace::faulty_nodes_at`]: overlapping or touching intervals of one
//! node are merged first, so the resulting edge stream strictly alternates
//! fault/repair per node — exactly what a stateful cluster manager (which
//! rejects double faults) can replay. [`generate_events`] composes the
//! renewal-process [`TraceGenerator`] with the adapter for seeded Poisson-style
//! arrival schedules.

use crate::generator::{GeneratorConfig, TraceGenerator};
use crate::trace::FaultTrace;
use hbd_types::{NodeId, Result, Seconds};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// The direction of a node-availability edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NodeEventKind {
    /// The node left service.
    Fault,
    /// The node returned to service.
    Repair,
}

/// One node-availability edge, ready for an event queue.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NodeEvent {
    /// When the edge occurs.
    pub at: Seconds,
    /// The node whose availability changes.
    pub node: NodeId,
    /// Whether the node goes down or comes back.
    pub kind: NodeEventKind,
}

/// Converts a fault trace into a time-ordered fault/repair edge stream.
///
/// Per node, overlapping and touching fault intervals are merged (union), so
/// edges strictly alternate `Fault`/`Repair` with strictly increasing times —
/// a node is reported down exactly while [`FaultTrace::faulty_nodes_at`] would
/// report it down. Zero-length intervals (never active under the trace's
/// half-open `[start, end)` semantics) produce no edges. A repair that
/// coincides with the trace end is still emitted: the simulator decides
/// whether to process edges at the horizon.
///
/// The output is sorted by `(time, node, kind)`, a total order, so the edge
/// stream is deterministic for a given trace.
pub fn trace_events(trace: &FaultTrace) -> Vec<NodeEvent> {
    // Bucket intervals per node (events() is already sorted by start time).
    let mut per_node: Vec<Vec<(f64, f64)>> = vec![Vec::new(); trace.nodes()];
    for event in trace.events() {
        if event.end.value() > event.start.value() {
            per_node[event.node.index()].push((event.start.value(), event.end.value()));
        }
    }
    let mut edges = Vec::new();
    for (node, intervals) in per_node.iter().enumerate() {
        let mut current: Option<(f64, f64)> = None;
        // Intervals inherit the trace's start-time order; touching intervals
        // (next.start <= current.end) keep the node continuously down and are
        // merged, matching the half-open `active_at` query.
        for &(start, end) in intervals {
            match current {
                Some((cur_start, cur_end)) if start <= cur_end => {
                    current = Some((cur_start, cur_end.max(end)));
                }
                Some((cur_start, cur_end)) => {
                    push_edges(&mut edges, NodeId(node), cur_start, cur_end);
                    current = Some((start, end));
                }
                None => current = Some((start, end)),
            }
        }
        if let Some((start, end)) = current {
            push_edges(&mut edges, NodeId(node), start, end);
        }
    }
    edges.sort_by(|a, b| {
        a.at.value()
            .total_cmp(&b.at.value())
            .then_with(|| a.node.cmp(&b.node))
            .then_with(|| (a.kind == NodeEventKind::Repair).cmp(&(b.kind == NodeEventKind::Repair)))
    });
    edges
}

fn push_edges(edges: &mut Vec<NodeEvent>, node: NodeId, start: f64, end: f64) {
    edges.push(NodeEvent {
        at: Seconds(start),
        node,
        kind: NodeEventKind::Fault,
    });
    edges.push(NodeEvent {
        at: Seconds(end),
        node,
        kind: NodeEventKind::Repair,
    });
}

/// Generates a seeded renewal-process (Poisson-style) edge stream: a
/// [`TraceGenerator`] trace driven by `StdRng::seed_from_u64(seed)`, converted
/// through [`trace_events`]. Deterministic in `(config, seed)`.
pub fn generate_events(config: &GeneratorConfig, seed: u64) -> Result<Vec<NodeEvent>> {
    let generator = TraceGenerator::new(*config)?;
    let mut rng = StdRng::seed_from_u64(seed);
    Ok(trace_events(&generator.generate(&mut rng)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::FaultEvent;

    fn replayed_state(edges: &[NodeEvent], nodes: usize, t: Seconds) -> Vec<NodeId> {
        let mut down = vec![false; nodes];
        for edge in edges.iter().filter(|e| e.at.value() <= t.value()) {
            // Half-open [start, end): an edge exactly at `t` has taken effect
            // for Fault but a Repair at `t` has too (node back in service).
            down[edge.node.index()] = edge.kind == NodeEventKind::Fault;
        }
        (0..nodes).filter(|&n| down[n]).map(NodeId).collect()
    }

    #[test]
    fn overlapping_intervals_merge_into_alternating_edges() {
        let trace = FaultTrace::new(
            4,
            Seconds(100.0),
            vec![
                FaultEvent::new(NodeId(1), Seconds(10.0), Seconds(40.0)),
                FaultEvent::new(NodeId(1), Seconds(30.0), Seconds(60.0)),
                FaultEvent::new(NodeId(1), Seconds(60.0), Seconds(70.0)), // touching
                FaultEvent::new(NodeId(1), Seconds(80.0), Seconds(90.0)), // separate
                FaultEvent::new(NodeId(2), Seconds(50.0), Seconds(50.0)), // zero length
            ],
        )
        .unwrap();
        let edges = trace_events(&trace);
        let node1: Vec<(f64, NodeEventKind)> = edges
            .iter()
            .filter(|e| e.node == NodeId(1))
            .map(|e| (e.at.value(), e.kind))
            .collect();
        assert_eq!(
            node1,
            vec![
                (10.0, NodeEventKind::Fault),
                (70.0, NodeEventKind::Repair),
                (80.0, NodeEventKind::Fault),
                (90.0, NodeEventKind::Repair),
            ]
        );
        // The zero-length interval is never active and emits nothing.
        assert!(edges.iter().all(|e| e.node != NodeId(2)));
    }

    #[test]
    fn replaying_edges_reproduces_the_trace_fault_sets() {
        let generator = TraceGenerator::new(GeneratorConfig {
            nodes: 30,
            duration: Seconds::from_days(20.0),
            steady_state_fault_ratio: 0.1,
            mean_time_to_repair: Seconds::from_hours(6.0),
        })
        .unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        let trace = generator.generate(&mut rng);
        let edges = trace_events(&trace);
        assert!(!edges.is_empty());
        // Edge stream is time-ordered.
        assert!(edges.windows(2).all(|w| w[0].at.value() <= w[1].at.value()));
        // Replaying the edges reproduces faulty_nodes_at at arbitrary probes
        // (offset from edge instants so half-open boundary semantics cannot
        // differ between the two representations).
        for day in [0.5f64, 3.1, 7.7, 13.4, 19.9] {
            let t = Seconds::from_days(day);
            assert_eq!(
                replayed_state(&edges, 30, t),
                trace.faulty_nodes_at(t),
                "day {day}"
            );
        }
    }

    #[test]
    fn per_node_edges_strictly_alternate() {
        let edges = generate_events(
            &GeneratorConfig {
                nodes: 20,
                duration: Seconds::from_days(10.0),
                steady_state_fault_ratio: 0.2,
                mean_time_to_repair: Seconds::from_hours(4.0),
            },
            3,
        )
        .unwrap();
        for node in 0..20 {
            let kinds: Vec<NodeEventKind> = edges
                .iter()
                .filter(|e| e.node == NodeId(node))
                .map(|e| e.kind)
                .collect();
            for (i, kind) in kinds.iter().enumerate() {
                let expected = if i % 2 == 0 {
                    NodeEventKind::Fault
                } else {
                    NodeEventKind::Repair
                };
                assert_eq!(*kind, expected, "node {node} edge {i}");
            }
        }
    }

    #[test]
    fn generation_is_deterministic_in_the_seed() {
        let config = GeneratorConfig {
            nodes: 16,
            duration: Seconds::from_days(5.0),
            steady_state_fault_ratio: 0.15,
            mean_time_to_repair: Seconds::from_hours(2.0),
        };
        let a = generate_events(&config, 11).unwrap();
        let b = generate_events(&config, 11).unwrap();
        let c = generate_events(&config, 12).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn node_event_serde_shape_is_pinned() {
        let event = NodeEvent {
            at: Seconds(12.5),
            node: NodeId(7),
            kind: NodeEventKind::Fault,
        };
        let json = serde_json::to_string(&event).unwrap();
        // Keys serialise in alphabetical order (the serde shim's map layout).
        assert_eq!(json, r#"{"at":12.5,"kind":"Fault","node":7}"#);
        let back: NodeEvent = serde_json::from_str(&json).unwrap();
        assert_eq!(back, event);
    }
}
