//! Fault traces and fault models.
//!
//! The paper's fault-resilience evaluation (§6.2) replays a **348-day
//! production fault trace** collected from a ~3K-GPU cluster of 8-GPU nodes:
//! on average 2.33 % of nodes are faulty at any instant, with a p50 of 1.67 %
//! and a p99 of 7.22 % (Appendix A). The trace itself is distributed separately
//! by the authors; this crate provides:
//!
//! * [`event`] / [`trace`] — the fault-event data model and trace container,
//!   with the instantaneous fault-set query the cluster simulator needs,
//! * [`generator`] — a statistical generator that produces traces matching the
//!   published statistics (per-node independent failure/repair renewal
//!   process), so every experiment that the paper runs on the production trace
//!   can be reproduced on a synthetic trace with the same macro behaviour,
//! * [`convert`] — the Appendix-A Bayesian conversion of an 8-GPU-node trace
//!   into a 4-GPU-node trace,
//! * [`stats`] — the macro statistics of Fig 18 (fault-ratio time series, CDF,
//!   percentiles),
//! * [`model`] — the i.i.d. node-fault model used for the "waste ratio vs fault
//!   ratio" sweeps (Figs 14 and 22),
//! * [`montecarlo`] — the parallel Monte-Carlo fan-out over (ratio, trial)
//!   shards with one deterministic RNG stream per shard,
//! * [`sim_events`] — trace → fault/repair edge-stream adapters for the
//!   control-plane discrete-event simulator (`control::sim`),
//! * [`storm`] — correlated fault storms: seeded blast-radius bursts keyed to
//!   ToR / aggregation domains, for overload- and recovery-robustness
//!   experiments.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod convert;
pub mod event;
pub mod generator;
pub mod io;
pub mod model;
pub mod montecarlo;
pub mod sim_events;
pub mod stats;
pub mod storm;
pub mod trace;

pub use convert::convert_8gpu_to_4gpu;
pub use event::FaultEvent;
pub use generator::{GeneratorConfig, TraceGenerator};
pub use io::{from_csv, from_json, to_csv, to_json};
pub use model::IidFaultModel;
pub use montecarlo::{shards, sweep_means, Shard};
pub use sim_events::{generate_events, trace_events, NodeEvent, NodeEventKind};
pub use stats::{TraceStats, DAY_SECONDS};
pub use storm::{generate_storms, StormBurst, StormConfig, StormSchedule};
pub use trace::FaultTrace;
