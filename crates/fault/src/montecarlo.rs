//! Parallel Monte-Carlo fan-out over (fault ratio, trial) shards.
//!
//! The waste-versus-fault-ratio sweeps (Figs 14 / 17d / 22) draw many
//! independent fault sets per ratio and average a metric over them — an
//! embarrassingly parallel grid. This module fans the grid out over scoped
//! threads with one deterministic RNG stream per `(ratio, trial)` shard, so
//! the sweep's result depends only on the master seed, never on the thread
//! count or scheduling order.

use crate::model::IidFaultModel;
use hbd_types::par::{par_map, stream_seed};
use hbd_types::NodeId;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One cell of a Monte-Carlo sweep grid: which fault ratio, which trial, and
/// the RNG seed owned by that shard.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Shard {
    /// Index of the fault ratio in the sweep's ratio list.
    pub ratio_index: usize,
    /// The fault ratio itself.
    pub ratio: f64,
    /// Trial number within the ratio, `0..trials`.
    pub trial: usize,
    /// Seed of this shard's private RNG stream.
    pub seed: u64,
}

impl Shard {
    /// The shard's private RNG.
    pub fn rng(&self) -> StdRng {
        StdRng::seed_from_u64(self.seed)
    }
}

/// Enumerates the `(ratio, trial)` grid with one [`stream_seed`]-derived seed
/// per shard. The flat index `ratio_index * trials + trial` keys the stream,
/// so the grid layout — not the execution order — defines every seed.
pub fn shards(fault_ratios: &[f64], trials: usize, master_seed: u64) -> Vec<Shard> {
    let mut grid = Vec::with_capacity(fault_ratios.len() * trials);
    for (ratio_index, &ratio) in fault_ratios.iter().enumerate() {
        for trial in 0..trials {
            grid.push(Shard {
                ratio_index,
                ratio,
                trial,
                seed: stream_seed(master_seed, (ratio_index * trials + trial) as u64),
            });
        }
    }
    grid
}

/// Runs `metric` on every `(ratio, trial)` shard in parallel and returns the
/// per-ratio trial means, in ratio order.
///
/// `metric` receives the shard's fault sample (drawn with
/// [`IidFaultModel::sample_exact`] from the shard's private stream) and the
/// ratio; the caller supplies `nodes` for the i.i.d. model. The output is
/// identical for every `threads` value.
pub fn sweep_means<F>(
    nodes: usize,
    fault_ratios: &[f64],
    trials: usize,
    master_seed: u64,
    threads: usize,
    metric: F,
) -> Vec<f64>
where
    F: Fn(&[NodeId], f64) -> f64 + Sync,
{
    assert!(trials > 0, "need at least one trial per ratio");
    let grid = shards(fault_ratios, trials, master_seed);
    let samples = par_map(threads, &grid, |_, shard| {
        let model = IidFaultModel::new(nodes, shard.ratio);
        let faults = model.sample_exact(&mut shard.rng());
        metric(&faults, shard.ratio)
    });
    // Reduce the flat grid back to per-ratio means (grid order is ratio-major).
    fault_ratios
        .iter()
        .enumerate()
        .map(|(ratio_index, _)| {
            let start = ratio_index * trials;
            samples[start..start + trials].iter().sum::<f64>() / trials as f64
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shards_cover_the_grid_deterministically() {
        let a = shards(&[0.0, 0.1], 3, 42);
        let b = shards(&[0.0, 0.1], 3, 42);
        assert_eq!(a.len(), 6);
        assert_eq!(a, b);
        // Every shard owns a distinct stream.
        let mut seeds: Vec<u64> = a.iter().map(|s| s.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 6);
    }

    #[test]
    fn sweep_means_is_thread_count_invariant() {
        let metric = |faults: &[NodeId], _ratio: f64| faults.len() as f64;
        let one = sweep_means(100, &[0.0, 0.05, 0.10], 8, 7, 1, metric);
        let four = sweep_means(100, &[0.0, 0.05, 0.10], 8, 7, 4, metric);
        assert_eq!(one, four);
        // sample_exact draws exactly round(ratio * nodes) faults, so the means
        // are exact regardless of the seed.
        assert_eq!(one, vec![0.0, 5.0, 10.0]);
    }

    #[test]
    #[should_panic(expected = "at least one trial")]
    fn zero_trials_are_rejected() {
        let _ = sweep_means(10, &[0.1], 0, 1, 1, |_, _| 0.0);
    }
}
