//! Correlated fault storms: blast-radius bursts keyed to ToR / aggregation
//! domains.
//!
//! The per-node renewal generator ([`crate::generator`]) produces
//! *independent* faults — the regime the paper's steady-state numbers are
//! calibrated against. Real incidents are different: a PSU trips a rack, an
//! aggregation switch reboots and takes every ToR under it dark at once. This
//! module generates such **correlated** storms deterministically: a seeded
//! Poisson-style arrival process of bursts over a modeled window, each burst
//! picking one aggregation domain, blasting a contiguous run of ToRs inside
//! it, and knocking out a fraction of the nodes under each blasted ToR with
//! slightly staggered onsets and exponential outage durations.
//!
//! The output is the same [`NodeEvent`] edge-stream contract as
//! [`crate::sim_events`] — per-node edges strictly alternate fault/repair
//! (overlapping outages of one node are merged through a [`FaultTrace`]), the
//! stream is sorted by `(time, node, kind)`, and everything is a pure
//! function of `(config, seed)`. Burst metadata rides alongside so consumers
//! (the `ext_fault_storms` experiment, recovery-time measurement) know when
//! each storm hit and how wide its blast radius was.
//!
//! The ToR / aggregation-domain geometry is the same arithmetic layout as
//! `topology::FatTree` (node `n` sits under ToR `n / nodes_per_tor`, ToR `t`
//! in domain `t / tors_per_domain`), kept arithmetic here so this crate does
//! not grow a topology dependency.

use crate::event::FaultEvent;
use crate::sim_events::{trace_events, NodeEvent};
use crate::trace::FaultTrace;
use hbd_types::{HbdError, NodeId, Result, Seconds};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Configuration of a correlated fault-storm schedule.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StormConfig {
    /// Cluster size (nodes).
    pub nodes: usize,
    /// Nodes under each ToR switch.
    pub nodes_per_tor: usize,
    /// ToRs under each aggregation domain.
    pub tors_per_domain: usize,
    /// The window over which storm bursts arrive.
    pub duration: Seconds,
    /// Mean inter-burst time of the Poisson-style arrival process.
    pub mean_interarrival: Seconds,
    /// ToRs blasted per burst (a contiguous run inside one aggregation
    /// domain; clamped to the domain width).
    pub blast_tors: usize,
    /// Fraction of the nodes under each blasted ToR that fault, in `(0, 1]`.
    pub hit_fraction: f64,
    /// Mean outage duration of each hit node (exponential).
    pub mean_outage: Seconds,
    /// Onset stagger: each hit node faults at the burst instant plus a
    /// uniform delay in `[0, stagger]` (power does not fail a whole rack in
    /// the same microsecond).
    pub stagger: Seconds,
}

impl StormConfig {
    fn validate(&self) -> Result<()> {
        if self.nodes == 0 || self.nodes_per_tor == 0 || self.tors_per_domain == 0 {
            return Err(HbdError::invalid_config(
                "storm geometry needs nodes, nodes_per_tor and tors_per_domain >= 1",
            ));
        }
        if !self.nodes.is_multiple_of(self.nodes_per_tor) {
            return Err(HbdError::invalid_config(
                "storm geometry: nodes must be a multiple of nodes_per_tor",
            ));
        }
        if self.duration.value() <= 0.0 || self.mean_interarrival.value() <= 0.0 {
            return Err(HbdError::invalid_config(
                "storm duration and mean interarrival must be positive",
            ));
        }
        if self.blast_tors == 0 {
            return Err(HbdError::invalid_config(
                "a storm burst must blast at least one ToR",
            ));
        }
        if !(self.hit_fraction > 0.0 && self.hit_fraction <= 1.0) {
            return Err(HbdError::invalid_config(
                "storm hit fraction must lie in (0, 1]",
            ));
        }
        if self.mean_outage.value() <= 0.0 || self.stagger.value() < 0.0 {
            return Err(HbdError::invalid_config(
                "storm outage must be positive and stagger non-negative",
            ));
        }
        Ok(())
    }

    /// Number of ToRs of the geometry.
    pub fn tors(&self) -> usize {
        self.nodes / self.nodes_per_tor
    }

    /// Number of aggregation domains (the last may be partial).
    pub fn domains(&self) -> usize {
        self.tors().div_ceil(self.tors_per_domain)
    }
}

/// One storm burst: when it struck and what it took down.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StormBurst {
    /// The burst instant (onsets stagger from here).
    pub at: Seconds,
    /// The aggregation domain it struck.
    pub domain: usize,
    /// The blasted ToRs (contiguous run inside `domain`, ascending).
    pub tors: Vec<usize>,
    /// The nodes knocked out, ascending.
    pub nodes: Vec<NodeId>,
}

/// A full correlated-storm schedule: burst metadata plus the merged
/// alternating fault/repair edge stream ready for replay.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StormSchedule {
    /// The bursts, in arrival order.
    pub bursts: Vec<StormBurst>,
    /// The edge stream (per-node strictly alternating, sorted by
    /// `(time, node, kind)`), merged across overlapping bursts.
    pub events: Vec<NodeEvent>,
}

impl StormSchedule {
    /// Total distinct nodes hit by any burst.
    pub fn distinct_nodes_hit(&self) -> usize {
        let mut hit: Vec<NodeId> = self.bursts.iter().flat_map(|b| b.nodes.clone()).collect();
        hit.sort();
        hit.dedup();
        hit.len()
    }

    /// The last repair instant, or `None` for an empty schedule.
    pub fn last_repair(&self) -> Option<Seconds> {
        self.events.last().map(|e| e.at)
    }
}

/// Draws an exponential variate with the given mean (same inverse-CDF idiom
/// as the renewal generator, guarded away from `ln(0)`).
fn exponential(rng: &mut StdRng, mean: Seconds) -> f64 {
    let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
    -mean.value() * u.ln()
}

/// Generates a correlated storm schedule. Deterministic in
/// `(config, seed)`; the RNG consumption order is fixed (burst arrival, then
/// domain, then ToR offset, then per-node onset/outage draws in ascending
/// node order), so the schedule is bit-stable.
pub fn generate_storms(config: &StormConfig, seed: u64) -> Result<StormSchedule> {
    config.validate()?;
    let mut rng = StdRng::seed_from_u64(seed);
    let tors = config.tors();
    let mut bursts = Vec::new();
    let mut fault_events: Vec<FaultEvent> = Vec::new();
    let mut horizon = config.duration.value();

    let mut at = exponential(&mut rng, config.mean_interarrival);
    while at < config.duration.value() {
        let domain = rng.gen_range(0..config.domains());
        let domain_first = domain * config.tors_per_domain;
        let domain_width = config.tors_per_domain.min(tors - domain_first);
        let blast = config.blast_tors.min(domain_width);
        let offset = rng.gen_range(0..=domain_width - blast);
        let first_tor = domain_first + offset;
        let blasted: Vec<usize> = (first_tor..first_tor + blast).collect();

        let mut hit_nodes = Vec::new();
        for &tor in &blasted {
            let base = tor * config.nodes_per_tor;
            // Ceil so hit_fraction > 0 always takes down at least one node
            // per blasted ToR.
            let hits = ((config.nodes_per_tor as f64 * config.hit_fraction).ceil() as usize)
                .clamp(1, config.nodes_per_tor);
            // A seeded partial Fisher-Yates over the ToR's nodes picks which
            // ones the burst reaches.
            let mut under: Vec<usize> = (base..base + config.nodes_per_tor).collect();
            for i in 0..hits {
                let j = rng.gen_range(i..under.len());
                under.swap(i, j);
            }
            let mut chosen: Vec<usize> = under[..hits].to_vec();
            chosen.sort_unstable();
            for node in chosen {
                let onset = at + config.stagger.value() * rng.gen::<f64>();
                let outage = exponential(&mut rng, config.mean_outage);
                horizon = horizon.max(onset + outage);
                fault_events.push(FaultEvent::new(
                    NodeId(node),
                    Seconds(onset),
                    Seconds(onset + outage),
                ));
                hit_nodes.push(NodeId(node));
            }
        }
        hit_nodes.sort();
        hit_nodes.dedup();
        bursts.push(StormBurst {
            at: Seconds(at),
            domain,
            tors: blasted,
            nodes: hit_nodes,
        });
        at += exponential(&mut rng, config.mean_interarrival);
    }

    // Route the intervals through a FaultTrace so overlapping outages of one
    // node (two bursts hitting the same rack) merge into strictly
    // alternating edges — the contract every replayer in this workspace
    // assumes. The trace horizon covers the longest outage tail.
    let events = if fault_events.is_empty() {
        Vec::new()
    } else {
        let trace = FaultTrace::new(config.nodes, Seconds(horizon.max(1e-9)), fault_events)?;
        trace_events(&trace)
    };
    Ok(StormSchedule { bursts, events })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim_events::NodeEventKind;

    fn config() -> StormConfig {
        StormConfig {
            nodes: 256,
            nodes_per_tor: 16,
            tors_per_domain: 8,
            duration: Seconds(1.0),
            mean_interarrival: Seconds(0.1),
            blast_tors: 3,
            hit_fraction: 0.75,
            mean_outage: Seconds(0.3),
            stagger: Seconds(0.005),
        }
    }

    #[test]
    fn storms_are_deterministic_in_the_seed() {
        let a = generate_storms(&config(), 7).unwrap();
        let b = generate_storms(&config(), 7).unwrap();
        let c = generate_storms(&config(), 8).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(!a.bursts.is_empty(), "the window should see several bursts");
    }

    #[test]
    fn bursts_respect_the_blast_radius_geometry() {
        let cfg = config();
        let schedule = generate_storms(&cfg, 13).unwrap();
        for burst in &schedule.bursts {
            assert!(burst.tors.len() <= cfg.blast_tors);
            // Contiguous run, all inside the burst's domain.
            for pair in burst.tors.windows(2) {
                assert_eq!(pair[1], pair[0] + 1);
            }
            for &tor in &burst.tors {
                assert_eq!(tor / cfg.tors_per_domain, burst.domain);
            }
            // Every hit node sits under a blasted ToR, and each blasted ToR
            // loses the configured fraction (ceil) of its nodes.
            for node in &burst.nodes {
                assert!(burst.tors.contains(&(node.index() / cfg.nodes_per_tor)));
            }
            let expected_per_tor = ((cfg.nodes_per_tor as f64 * cfg.hit_fraction).ceil() as usize)
                .clamp(1, cfg.nodes_per_tor);
            for &tor in &burst.tors {
                let hit = burst
                    .nodes
                    .iter()
                    .filter(|n| n.index() / cfg.nodes_per_tor == tor)
                    .count();
                assert_eq!(hit, expected_per_tor, "ToR {tor}");
            }
        }
    }

    #[test]
    fn per_node_edges_strictly_alternate_even_across_overlapping_bursts() {
        // A violent config: bursts every 20 ms with 300 ms outages, so the
        // same racks are re-hit while still down.
        let cfg = StormConfig {
            mean_interarrival: Seconds(0.02),
            ..config()
        };
        let schedule = generate_storms(&cfg, 21).unwrap();
        assert!(schedule.bursts.len() > 10);
        for node in 0..cfg.nodes {
            let kinds: Vec<NodeEventKind> = schedule
                .events
                .iter()
                .filter(|e| e.node == NodeId(node))
                .map(|e| e.kind)
                .collect();
            for (i, kind) in kinds.iter().enumerate() {
                let expected = if i % 2 == 0 {
                    NodeEventKind::Fault
                } else {
                    NodeEventKind::Repair
                };
                assert_eq!(*kind, expected, "node {node} edge {i}");
            }
        }
        // Sorted stream.
        assert!(schedule
            .events
            .windows(2)
            .all(|w| w[0].at.value() <= w[1].at.value()));
    }

    #[test]
    fn a_full_domain_blast_takes_every_tor_of_one_domain() {
        let cfg = StormConfig {
            blast_tors: usize::MAX,
            hit_fraction: 1.0,
            ..config()
        };
        let schedule = generate_storms(&cfg, 3).unwrap();
        let burst = &schedule.bursts[0];
        assert_eq!(burst.tors.len(), cfg.tors_per_domain);
        assert_eq!(
            burst.nodes.len(),
            cfg.tors_per_domain * cfg.nodes_per_tor,
            "hit_fraction 1.0 downs the whole aggregation domain"
        );
    }

    #[test]
    fn zero_stagger_onsets_coincide_with_the_burst_instant() {
        let cfg = StormConfig {
            stagger: Seconds(0.0),
            ..config()
        };
        let schedule = generate_storms(&cfg, 5).unwrap();
        let burst_times: Vec<f64> = schedule.bursts.iter().map(|b| b.at.value()).collect();
        for event in schedule
            .events
            .iter()
            .filter(|e| e.kind == NodeEventKind::Fault)
        {
            assert!(
                burst_times
                    .iter()
                    .any(|&t| (t - event.at.value()).abs() < 1e-12),
                "every fault onset lies exactly on some burst instant"
            );
        }
    }
}
