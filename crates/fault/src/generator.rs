//! Statistical fault-trace generator.
//!
//! The production trace the paper uses cannot be bundled with this repository,
//! so we generate traces from a per-node **renewal process**: each node
//! alternates between healthy periods (exponentially distributed with mean
//! `mttf`) and repair periods (exponentially distributed with mean `mttr`).
//! With independent nodes, the steady-state probability that a node is faulty
//! is `mttr / (mttf + mttr)`, which we calibrate to the published mean faulty
//! ratio of 2.33 % for 8-GPU nodes. The resulting instantaneous fault-ratio
//! distribution (binomial around the mean) reproduces the p50/p99 shape of
//! Fig 18 for a ~400-node cluster.

use crate::event::FaultEvent;
use crate::trace::FaultTrace;
use hbd_types::{HbdError, NodeId, Result, Seconds};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Configuration of the trace generator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GeneratorConfig {
    /// Number of nodes in the generated trace.
    pub nodes: usize,
    /// Trace duration.
    pub duration: Seconds,
    /// Steady-state probability that a node is faulty (the paper's 8-GPU-node
    /// average is 2.33 %).
    pub steady_state_fault_ratio: f64,
    /// Mean time to repair a faulty node. The paper does not publish the exact
    /// value; 12 hours is representative of the repair turnaround of a
    /// production fleet and, combined with the steady-state ratio, fixes the
    /// failure rate.
    pub mean_time_to_repair: Seconds,
}

impl GeneratorConfig {
    /// The configuration matching the production trace's published statistics:
    /// ~400 8-GPU nodes (3K+ GPUs), 348 days, 2.33 % average faulty-node ratio.
    pub fn paper_8gpu_cluster() -> Self {
        GeneratorConfig {
            nodes: 400,
            duration: Seconds::from_days(348.0),
            steady_state_fault_ratio: 0.0233,
            mean_time_to_repair: Seconds::from_hours(12.0),
        }
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<()> {
        if self.nodes == 0 {
            return Err(HbdError::invalid_config(
                "generator needs at least one node",
            ));
        }
        if self.duration.value() <= 0.0 {
            return Err(HbdError::invalid_config("duration must be positive"));
        }
        if !(0.0..1.0).contains(&self.steady_state_fault_ratio) {
            return Err(HbdError::invalid_config(
                "steady-state fault ratio must lie in [0, 1)",
            ));
        }
        if self.mean_time_to_repair.value() <= 0.0 {
            return Err(HbdError::invalid_config(
                "mean time to repair must be positive",
            ));
        }
        Ok(())
    }

    /// Mean time to failure implied by the steady-state ratio and the repair
    /// time: `ratio = mttr / (mttf + mttr)`.
    pub fn mean_time_to_failure(&self) -> Seconds {
        if self.steady_state_fault_ratio <= 0.0 {
            return Seconds(f64::INFINITY);
        }
        Seconds(
            self.mean_time_to_repair.value() * (1.0 - self.steady_state_fault_ratio)
                / self.steady_state_fault_ratio,
        )
    }
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        Self::paper_8gpu_cluster()
    }
}

/// The trace generator.
#[derive(Debug, Clone)]
pub struct TraceGenerator {
    config: GeneratorConfig,
}

impl TraceGenerator {
    /// Creates a generator from a validated configuration.
    pub fn new(config: GeneratorConfig) -> Result<Self> {
        config.validate()?;
        Ok(TraceGenerator { config })
    }

    /// The generator's configuration.
    pub fn config(&self) -> &GeneratorConfig {
        &self.config
    }

    /// Generates a fault trace using the supplied RNG. Deterministic for a
    /// given RNG seed.
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> FaultTrace {
        let mttf = self.config.mean_time_to_failure().value();
        let mttr = self.config.mean_time_to_repair.value();
        let duration = self.config.duration.value();
        let mut events = Vec::new();

        for node in 0..self.config.nodes {
            // Start each node in steady state: with probability `ratio` it is
            // already in a repair period at t = 0.
            let mut t = 0.0;
            if rng.gen::<f64>() < self.config.steady_state_fault_ratio {
                let remaining = exponential(rng, mttr);
                let end = (t + remaining).min(duration);
                events.push(FaultEvent::new(NodeId(node), Seconds(t), Seconds(end)));
                t = end;
            }
            loop {
                // Healthy period.
                t += exponential(rng, mttf);
                if t >= duration {
                    break;
                }
                // Repair period.
                let repair = exponential(rng, mttr);
                let end = (t + repair).min(duration);
                events.push(FaultEvent::new(NodeId(node), Seconds(t), Seconds(end)));
                t = end;
                if t >= duration {
                    break;
                }
            }
        }

        FaultTrace::new(self.config.nodes, self.config.duration, events)
            .expect("generated events are in range by construction")
    }
}

/// Draws from an exponential distribution with the given mean.
fn exponential<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> f64 {
    let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
    -mean * u.ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::TraceStats;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn config_validation() {
        assert!(GeneratorConfig::paper_8gpu_cluster().validate().is_ok());
        let mut cfg = GeneratorConfig::paper_8gpu_cluster();
        cfg.nodes = 0;
        assert!(cfg.validate().is_err());
        let mut cfg = GeneratorConfig::paper_8gpu_cluster();
        cfg.steady_state_fault_ratio = 1.5;
        assert!(cfg.validate().is_err());
        let mut cfg = GeneratorConfig::paper_8gpu_cluster();
        cfg.mean_time_to_repair = Seconds(0.0);
        assert!(cfg.validate().is_err());
        let mut cfg = GeneratorConfig::paper_8gpu_cluster();
        cfg.duration = Seconds(-1.0);
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn implied_mttf_matches_steady_state_ratio() {
        let cfg = GeneratorConfig::paper_8gpu_cluster();
        let mttf = cfg.mean_time_to_failure().value();
        let mttr = cfg.mean_time_to_repair.value();
        let ratio = mttr / (mttf + mttr);
        assert!((ratio - 0.0233).abs() < 1e-9);
    }

    #[test]
    fn generation_is_deterministic_for_a_seed() {
        let generator = TraceGenerator::new(GeneratorConfig {
            nodes: 50,
            duration: Seconds::from_days(30.0),
            ..GeneratorConfig::paper_8gpu_cluster()
        })
        .unwrap();
        let a = generator.generate(&mut StdRng::seed_from_u64(1));
        let b = generator.generate(&mut StdRng::seed_from_u64(1));
        let c = generator.generate(&mut StdRng::seed_from_u64(2));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn generated_trace_matches_target_mean_fault_ratio() {
        let generator = TraceGenerator::new(GeneratorConfig::paper_8gpu_cluster()).unwrap();
        let trace = generator.generate(&mut StdRng::seed_from_u64(7));
        let stats = TraceStats::compute(&trace, 2000);
        // The mean instantaneous fault ratio should land near 2.33%.
        assert!(
            (stats.mean_ratio - 0.0233).abs() < 0.006,
            "mean ratio {} too far from 2.33%",
            stats.mean_ratio
        );
        // And the p99 should be in the ballpark of the published 7.22%.
        assert!(
            stats.p99_ratio > 0.035 && stats.p99_ratio < 0.11,
            "p99 {}",
            stats.p99_ratio
        );
    }

    #[test]
    fn zero_fault_ratio_produces_an_empty_trace() {
        let generator = TraceGenerator::new(GeneratorConfig {
            nodes: 10,
            duration: Seconds::from_days(1.0),
            steady_state_fault_ratio: 0.0,
            mean_time_to_repair: Seconds::from_hours(1.0),
        })
        .unwrap();
        let trace = generator.generate(&mut StdRng::seed_from_u64(3));
        assert!(trace.is_empty());
    }
}
