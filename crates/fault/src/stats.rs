//! Macro statistics of a fault trace — the quantities plotted in Fig 18
//! (fault-node ratio over time and its cumulative distribution, with the p50
//! and p99 annotations).

use crate::trace::FaultTrace;
use hbd_types::Seconds;
use serde::{Deserialize, Serialize};

/// Seconds per day, used when bucketing a trace into daily samples.
pub const DAY_SECONDS: f64 = 86_400.0;

/// Summary statistics of the instantaneous node-fault ratio of a trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceStats {
    /// Sampled `(time, fault ratio)` series (Fig 18a).
    pub series: Vec<(Seconds, f64)>,
    /// Mean instantaneous fault ratio.
    pub mean_ratio: f64,
    /// Median (p50) instantaneous fault ratio.
    pub p50_ratio: f64,
    /// 99th-percentile instantaneous fault ratio.
    pub p99_ratio: f64,
    /// Maximum instantaneous fault ratio observed.
    pub max_ratio: f64,
}

impl TraceStats {
    /// Computes the statistics by sampling the trace at `samples` evenly spaced
    /// instants.
    pub fn compute(trace: &FaultTrace, samples: usize) -> Self {
        let series: Vec<(Seconds, f64)> = trace
            .sample(samples)
            .into_iter()
            .map(|(t, faulty)| (t, faulty.len() as f64 / trace.nodes() as f64))
            .collect();
        let mut ratios: Vec<f64> = series.iter().map(|&(_, r)| r).collect();
        ratios.sort_by(|a, b| a.partial_cmp(b).expect("ratios are finite"));
        let mean_ratio = ratios.iter().sum::<f64>() / ratios.len() as f64;
        TraceStats {
            mean_ratio,
            p50_ratio: percentile(&ratios, 0.50),
            p99_ratio: percentile(&ratios, 0.99),
            max_ratio: *ratios.last().unwrap_or(&0.0),
            series,
        }
    }

    /// The empirical CDF of the fault ratio as `(ratio, cumulative probability)`
    /// points (Fig 18b).
    pub fn cdf(&self) -> Vec<(f64, f64)> {
        let mut ratios: Vec<f64> = self.series.iter().map(|&(_, r)| r).collect();
        ratios.sort_by(|a, b| a.partial_cmp(b).expect("ratios are finite"));
        let n = ratios.len() as f64;
        ratios
            .into_iter()
            .enumerate()
            .map(|(i, r)| (r, (i + 1) as f64 / n))
            .collect()
    }

    /// Samples the trace once per day, the granularity of Fig 18a.
    pub fn daily(trace: &FaultTrace) -> Self {
        let days = (trace.duration().value() / DAY_SECONDS).ceil().max(1.0) as usize;
        Self::compute(trace, days)
    }
}

/// Percentile of an already-sorted slice using nearest-rank interpolation.
pub fn percentile(sorted: &[f64], q: f64) -> f64 {
    assert!(
        !sorted.is_empty(),
        "cannot take a percentile of an empty slice"
    );
    assert!((0.0..=1.0).contains(&q), "quantile must lie in [0, 1]");
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::FaultEvent;
    use hbd_types::NodeId;

    fn trace_with_constant_ratio() -> FaultTrace {
        // 2 of 10 nodes are faulty for the entire duration: ratio is always 0.2.
        FaultTrace::new(
            10,
            Seconds(1000.0),
            vec![
                FaultEvent::new(NodeId(0), Seconds(0.0), Seconds(1000.0)),
                FaultEvent::new(NodeId(1), Seconds(0.0), Seconds(1000.0)),
            ],
        )
        .unwrap()
    }

    #[test]
    fn constant_trace_has_flat_statistics() {
        let stats = TraceStats::compute(&trace_with_constant_ratio(), 100);
        assert!((stats.mean_ratio - 0.2).abs() < 1e-12);
        assert!((stats.p50_ratio - 0.2).abs() < 1e-12);
        assert!((stats.p99_ratio - 0.2).abs() < 1e-12);
        assert!((stats.max_ratio - 0.2).abs() < 1e-12);
        assert_eq!(stats.series.len(), 100);
    }

    #[test]
    fn cdf_is_monotone_and_ends_at_one() {
        let stats = TraceStats::compute(&trace_with_constant_ratio(), 50);
        let cdf = stats.cdf();
        assert_eq!(cdf.len(), 50);
        assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-12);
        assert!(cdf.windows(2).all(|w| w[1].1 >= w[0].1 && w[1].0 >= w[0].0));
    }

    #[test]
    fn percentile_interpolates() {
        let data = vec![0.0, 1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&data, 0.0), 0.0);
        assert_eq!(percentile(&data, 1.0), 4.0);
        assert_eq!(percentile(&data, 0.5), 2.0);
        assert!((percentile(&data, 0.25) - 1.0).abs() < 1e-12);
        assert!((percentile(&data, 0.9) - 3.6).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty slice")]
    fn percentile_of_empty_slice_panics() {
        let _ = percentile(&[], 0.5);
    }

    #[test]
    fn daily_sampling_matches_duration_in_days() {
        let trace = FaultTrace::new(4, Seconds::from_days(10.0), vec![]).unwrap();
        let stats = TraceStats::daily(&trace);
        assert_eq!(stats.series.len(), 10);
        assert_eq!(stats.mean_ratio, 0.0);
    }
}
