//! The fault trace container: a time-ordered collection of fault events over a
//! fixed-size cluster, with the instantaneous fault-set query the cluster
//! simulator replays (§6.2).

use crate::event::FaultEvent;
use hbd_types::{HbdError, NodeId, Result, Seconds};
use serde::{Deserialize, Serialize};

/// A fault trace over a cluster of `nodes` nodes and `duration` of wall time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultTrace {
    nodes: usize,
    duration: Seconds,
    events: Vec<FaultEvent>,
}

impl FaultTrace {
    /// Creates a trace, validating that every event references an in-range node
    /// and lies within the trace duration. Events are stored sorted by start
    /// time.
    pub fn new(nodes: usize, duration: Seconds, mut events: Vec<FaultEvent>) -> Result<Self> {
        if nodes == 0 {
            return Err(HbdError::invalid_config("a trace needs at least one node"));
        }
        if duration.value() <= 0.0 {
            return Err(HbdError::invalid_config("trace duration must be positive"));
        }
        for event in &events {
            if event.node.index() >= nodes {
                return Err(HbdError::unknown_entity(format!(
                    "{} in a {nodes}-node trace",
                    event.node
                )));
            }
            if event.start.value() < 0.0 || event.end.value() > duration.value() {
                return Err(HbdError::invalid_config(format!(
                    "fault on {} ({} .. {}) lies outside the trace duration {duration}",
                    event.node, event.start, event.end
                )));
            }
        }
        events.sort_by(|a, b| {
            a.start
                .value()
                .partial_cmp(&b.start.value())
                .expect("fault times are finite")
        });
        Ok(FaultTrace {
            nodes,
            duration,
            events,
        })
    }

    /// Number of nodes covered by the trace.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Total duration of the trace.
    pub fn duration(&self) -> Seconds {
        self.duration
    }

    /// All fault events, sorted by start time.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Number of fault events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace contains no fault events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The nodes that are out of service at time `t`, in ascending order and
    /// without duplicates (a node with overlapping fault records is reported
    /// once).
    pub fn faulty_nodes_at(&self, t: Seconds) -> Vec<NodeId> {
        let mut nodes: Vec<NodeId> = self
            .events
            .iter()
            .filter(|e| e.active_at(t))
            .map(|e| e.node)
            .collect();
        nodes.sort();
        nodes.dedup();
        nodes
    }

    /// Instantaneous node fault ratio at time `t`.
    pub fn fault_ratio_at(&self, t: Seconds) -> f64 {
        self.faulty_nodes_at(t).len() as f64 / self.nodes as f64
    }

    /// Samples the trace at `samples` evenly spaced instants, returning
    /// `(time, faulty node set)` pairs. This is the replay loop every
    /// fault-resilience experiment uses.
    ///
    /// Event-driven: instead of scanning every event at every instant
    /// (O(samples × events)), each event is bucketed into the few instants it
    /// covers — O(events × instants-per-event + samples). Which instants an
    /// event covers is decided by the *same* `active_at(t_i)` comparison the
    /// per-instant scan would make (the arithmetic index range is only a
    /// conservative pre-filter), so the output is identical to querying
    /// [`faulty_nodes_at`](Self::faulty_nodes_at) instant by instant.
    pub fn sample(&self, samples: usize) -> Vec<(Seconds, Vec<NodeId>)> {
        assert!(samples > 0, "need at least one sample");
        let duration = self.duration.value();
        let instant = |i: usize| Seconds(duration * i as f64 / samples as f64);
        let mut buckets: Vec<Vec<NodeId>> = vec![Vec::new(); samples];
        for event in &self.events {
            // Conservative candidate range around [start, end), padded by one
            // instant on each side against floating-point rounding; the exact
            // `active_at` test below makes the final call.
            let lo = (event.start.value() * samples as f64 / duration).floor() as usize;
            let lo = lo.saturating_sub(1);
            let hi = (event.end.value() * samples as f64 / duration).ceil() as usize;
            let hi = hi.saturating_add(1).min(samples);
            for (i, bucket) in buckets.iter_mut().enumerate().take(hi).skip(lo) {
                if event.active_at(instant(i)) {
                    bucket.push(event.node);
                }
            }
        }
        buckets
            .into_iter()
            .enumerate()
            .map(|(i, mut nodes)| {
                nodes.sort();
                nodes.dedup();
                (instant(i), nodes)
            })
            .collect()
    }

    /// Mean time to repair over all events (zero when the trace is empty).
    pub fn mean_repair_time(&self) -> Seconds {
        if self.events.is_empty() {
            return Seconds::ZERO;
        }
        let total: f64 = self.events.iter().map(|e| e.duration().value()).sum();
        Seconds(total / self.events.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple_trace() -> FaultTrace {
        FaultTrace::new(
            10,
            Seconds(1000.0),
            vec![
                FaultEvent::new(NodeId(2), Seconds(100.0), Seconds(300.0)),
                FaultEvent::new(NodeId(5), Seconds(250.0), Seconds(600.0)),
                FaultEvent::new(NodeId(2), Seconds(700.0), Seconds(900.0)),
            ],
        )
        .unwrap()
    }

    #[test]
    fn construction_validates_inputs() {
        assert!(FaultTrace::new(0, Seconds(10.0), vec![]).is_err());
        assert!(FaultTrace::new(5, Seconds(0.0), vec![]).is_err());
        assert!(FaultTrace::new(
            5,
            Seconds(10.0),
            vec![FaultEvent::new(NodeId(9), Seconds(0.0), Seconds(1.0))]
        )
        .is_err());
        assert!(FaultTrace::new(
            5,
            Seconds(10.0),
            vec![FaultEvent::new(NodeId(1), Seconds(5.0), Seconds(20.0))]
        )
        .is_err());
    }

    #[test]
    fn events_are_sorted_by_start() {
        let trace = FaultTrace::new(
            4,
            Seconds(100.0),
            vec![
                FaultEvent::new(NodeId(1), Seconds(50.0), Seconds(60.0)),
                FaultEvent::new(NodeId(0), Seconds(10.0), Seconds(20.0)),
            ],
        )
        .unwrap();
        assert_eq!(trace.events()[0].node, NodeId(0));
        assert_eq!(trace.len(), 2);
        assert!(!trace.is_empty());
    }

    #[test]
    fn faulty_nodes_at_reflects_overlaps() {
        let trace = simple_trace();
        assert!(trace.faulty_nodes_at(Seconds(50.0)).is_empty());
        assert_eq!(trace.faulty_nodes_at(Seconds(150.0)), vec![NodeId(2)]);
        assert_eq!(
            trace.faulty_nodes_at(Seconds(275.0)),
            vec![NodeId(2), NodeId(5)]
        );
        assert_eq!(trace.faulty_nodes_at(Seconds(800.0)), vec![NodeId(2)]);
        assert!((trace.fault_ratio_at(Seconds(275.0)) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn duplicate_concurrent_faults_are_reported_once() {
        let trace = FaultTrace::new(
            4,
            Seconds(100.0),
            vec![
                FaultEvent::new(NodeId(1), Seconds(0.0), Seconds(50.0)),
                FaultEvent::new(NodeId(1), Seconds(10.0), Seconds(60.0)),
            ],
        )
        .unwrap();
        assert_eq!(trace.faulty_nodes_at(Seconds(20.0)), vec![NodeId(1)]);
    }

    #[test]
    fn sampling_covers_the_whole_duration() {
        let trace = simple_trace();
        let samples = trace.sample(10);
        assert_eq!(samples.len(), 10);
        assert_eq!(samples[0].0, Seconds(0.0));
        assert!(samples[9].0.value() < 1000.0);
    }

    #[test]
    fn event_driven_sampling_matches_per_instant_queries() {
        // The bucketed sample() must agree exactly with querying
        // faulty_nodes_at at every instant, including at event boundaries
        // that coincide with sample instants (t = 100 is active, t = 300 is
        // not: [start, end) semantics).
        let trace = FaultTrace::new(
            10,
            Seconds(1000.0),
            vec![
                FaultEvent::new(NodeId(2), Seconds(100.0), Seconds(300.0)),
                FaultEvent::new(NodeId(5), Seconds(250.0), Seconds(600.0)),
                FaultEvent::new(NodeId(2), Seconds(700.0), Seconds(900.0)),
                FaultEvent::new(NodeId(5), Seconds(0.0), Seconds(1000.0)),
                FaultEvent::new(NodeId(9), Seconds(500.0), Seconds(500.0)),
            ],
        )
        .unwrap();
        for samples in [1usize, 7, 10, 100, 348] {
            let sampled = trace.sample(samples);
            assert_eq!(sampled.len(), samples);
            for (i, (t, nodes)) in sampled.iter().enumerate() {
                let expect_t = Seconds(1000.0 * i as f64 / samples as f64);
                assert_eq!(*t, expect_t);
                assert_eq!(nodes, &trace.faulty_nodes_at(*t), "instant {t}");
            }
        }
    }

    #[test]
    fn boundary_instants_follow_the_half_open_convention() {
        // Events whose start/end land *exactly* on sample instants: the
        // closed-start/open-end convention of `active_at` must hold at the
        // boundary itself, and the event-driven `sample` path must agree with
        // `active_at` at exactly those instants (its candidate-bucket
        // prefilter is conservative; the exact test makes the final call).
        //
        // Duration 100, 10 samples -> instants at 0, 10, ..., 90, all exact
        // in binary floating point, so no rounding can mask an off-by-one.
        let trace = FaultTrace::new(
            8,
            Seconds(100.0),
            vec![
                FaultEvent::new(NodeId(1), Seconds(10.0), Seconds(30.0)), // both on-grid
                FaultEvent::new(NodeId(2), Seconds(0.0), Seconds(20.0)),  // starts at t=0
                FaultEvent::new(NodeId(3), Seconds(90.0), Seconds(100.0)), // runs to the horizon
                FaultEvent::new(NodeId(4), Seconds(50.0), Seconds(50.0)), // zero length
            ],
        )
        .unwrap();

        // The trace orders events by start time; look them up by node.
        let event_of = |node: usize| {
            *trace
                .events()
                .iter()
                .find(|e| e.node == NodeId(node))
                .unwrap()
        };
        // Closed start: active the instant the fault begins.
        assert!(event_of(1).active_at(Seconds(10.0)));
        // Open end: no longer active the instant the repair lands.
        assert!(!event_of(1).active_at(Seconds(30.0)));
        // A zero-length event is never active, not even at its own instant.
        assert!(!event_of(4).active_at(Seconds(50.0)));
        // `overlaps` uses the same half-open convention on both sides.
        assert!(!event_of(1).overlaps(Seconds(30.0), Seconds(40.0)));
        assert!(!event_of(1).overlaps(Seconds(0.0), Seconds(10.0)));
        assert!(event_of(1).overlaps(Seconds(10.0), Seconds(11.0)));

        let sampled = trace.sample(10);
        let at = |i: usize| -> &[NodeId] { &sampled[i].1 };
        // t=10: node 1 just failed (closed start), node 2 still down.
        assert_eq!(at(1), &[NodeId(1), NodeId(2)]);
        // t=20: node 2's repair lands exactly here (open end) — only node 1.
        assert_eq!(at(2), &[NodeId(1)]);
        // t=30: node 1's repair lands exactly here — nobody is down.
        assert!(at(3).is_empty());
        // t=50: the zero-length event contributes nothing.
        assert!(at(5).is_empty());
        // t=90: the horizon-touching fault is active at its start instant.
        assert_eq!(at(9), &[NodeId(3)]);

        // And the full cross-check: every sampled bucket equals the
        // point-query at the same instant.
        for (t, nodes) in &sampled {
            assert_eq!(nodes, &trace.faulty_nodes_at(*t), "instant {t}");
        }
    }

    #[test]
    fn mean_repair_time() {
        let trace = simple_trace();
        // Durations: 200, 350, 200 -> mean 250.
        assert!((trace.mean_repair_time().value() - 250.0).abs() < 1e-9);
        let empty = FaultTrace::new(4, Seconds(10.0), vec![]).unwrap();
        assert_eq!(empty.mean_repair_time(), Seconds::ZERO);
    }
}
