//! The i.i.d. node-fault model used for the "GPU waste ratio versus node fault
//! ratio" sweeps (Figs 14 and 22) and the aggregate-cost sweep (Fig 17d).
//!
//! Unlike the trace replay, these experiments do not care about temporal
//! dynamics: they ask "if a fraction `f` of nodes is faulty *right now*, how
//! much capacity does each architecture lose?". The model draws fault sets
//! either by including each node independently with probability `f`
//! ([`IidFaultModel::sample`]) or by choosing exactly `⌊f·n⌋` faulty nodes
//! uniformly at random ([`IidFaultModel::sample_exact`], which removes the
//! binomial noise and is what the smooth curves of Fig 14 use).

use hbd_types::NodeId;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Independent, identically distributed node-fault model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IidFaultModel {
    /// Number of nodes in the cluster.
    pub nodes: usize,
    /// Probability that any given node is faulty.
    pub fault_ratio: f64,
}

impl IidFaultModel {
    /// Creates a model. The ratio is clamped to `[0, 1]`.
    pub fn new(nodes: usize, fault_ratio: f64) -> Self {
        IidFaultModel {
            nodes,
            fault_ratio: fault_ratio.clamp(0.0, 1.0),
        }
    }

    /// Expected number of faulty nodes.
    pub fn expected_faulty_nodes(&self) -> f64 {
        self.nodes as f64 * self.fault_ratio
    }

    /// Draws a fault set by including each node independently with probability
    /// `fault_ratio`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<NodeId> {
        (0..self.nodes)
            .filter(|_| rng.gen::<f64>() < self.fault_ratio)
            .map(NodeId)
            .collect()
    }

    /// Draws a fault set with exactly `round(nodes × fault_ratio)` faulty
    /// nodes, chosen uniformly at random without replacement.
    ///
    /// Implementation: an inlined Fisher–Yates whose rejection-sampling mask
    /// is hoisted out of the per-position loop and recomputed only at
    /// power-of-two span boundaries (the generic `shuffle` recomputes a u128
    /// mask per draw), over a compact `u32` permutation buffer. The draw
    /// sequence is **bit-for-bit identical** to the naive
    /// shuffle-take-sort sampler this replaces (retained as the test oracle),
    /// which is what keeps every pinned experiment output byte-stable — a
    /// distribution-level batched binomial/geometric sampler would be faster
    /// still but would re-randomise all committed sweep results.
    pub fn sample_exact<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<NodeId> {
        let count = (self.nodes as f64 * self.fault_ratio).round() as usize;
        let count = count.min(self.nodes);
        debug_assert!(self.nodes <= u32::MAX as usize, "node index fits in u32");
        let mut perm: Vec<u32> = (0..self.nodes as u32).collect();
        let mut hi = self.nodes.saturating_sub(1);
        while hi >= 1 {
            // Block of positions sharing one mask: spans (p/2, p] for the
            // power of two p covering hi + 1.
            let p = ((hi + 1) as u64).next_power_of_two();
            let mask = p - 1;
            let lo = ((p / 2) as usize).max(1);
            for i in (lo..=hi).rev() {
                let span = (i + 1) as u64;
                // Same accept/reject sequence as `sample_int_range(0, i + 1)`.
                let j = loop {
                    let candidate = rng.next_u64() & mask;
                    if candidate < span {
                        break candidate as usize;
                    }
                };
                perm.swap(i, j);
            }
            hi = lo - 1;
        }
        perm.truncate(count);
        perm.sort_unstable();
        perm.into_iter().map(|n| NodeId(n as usize)).collect()
    }

    /// The naive shuffle-take-sort sampler [`IidFaultModel::sample_exact`]
    /// replaced, kept verbatim as the oracle: a property test pins the fast
    /// path to it bit-for-bit (identical output *and* identical RNG
    /// consumption).
    #[cfg(test)]
    pub(crate) fn sample_exact_oracle<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<NodeId> {
        use rand::seq::SliceRandom;
        let count = (self.nodes as f64 * self.fault_ratio).round() as usize;
        let count = count.min(self.nodes);
        let mut all: Vec<usize> = (0..self.nodes).collect();
        all.shuffle(rng);
        let mut chosen: Vec<NodeId> = all.into_iter().take(count).map(NodeId).collect();
        chosen.sort();
        chosen
    }

    /// Probability that a run of `k` *consecutive* nodes is entirely faulty —
    /// the quantity the Appendix-C analysis calls "fault non-locality":
    /// consecutive multi-node failures decay exponentially with the run length.
    pub fn consecutive_fault_probability(&self, k: u32) -> f64 {
        self.fault_ratio.powi(k as i32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ratio_is_clamped() {
        assert_eq!(IidFaultModel::new(10, -0.5).fault_ratio, 0.0);
        assert_eq!(IidFaultModel::new(10, 1.5).fault_ratio, 1.0);
    }

    #[test]
    fn sample_exact_returns_requested_count() {
        let model = IidFaultModel::new(720, 0.05);
        let mut rng = StdRng::seed_from_u64(11);
        let faults = model.sample_exact(&mut rng);
        assert_eq!(faults.len(), 36);
        // Sorted and unique.
        assert!(faults.windows(2).all(|w| w[0] < w[1]));
        assert!(faults.iter().all(|n| n.index() < 720));
    }

    #[test]
    fn bernoulli_sample_is_near_the_expectation() {
        let model = IidFaultModel::new(10_000, 0.0233);
        let mut rng = StdRng::seed_from_u64(5);
        let faults = model.sample(&mut rng);
        let ratio = faults.len() as f64 / 10_000.0;
        assert!((ratio - 0.0233).abs() < 0.005, "observed ratio {ratio}");
        assert!((model.expected_faulty_nodes() - 233.0).abs() < 1e-9);
    }

    #[test]
    fn extreme_ratios() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(IidFaultModel::new(100, 0.0)
            .sample_exact(&mut rng)
            .is_empty());
        assert_eq!(
            IidFaultModel::new(100, 1.0).sample_exact(&mut rng).len(),
            100
        );
        assert!(IidFaultModel::new(100, 0.0).sample(&mut rng).is_empty());
    }

    #[test]
    fn fast_sampler_is_pinned_to_the_oracle_on_the_fig14_grid() {
        // The exact (nodes, ratio) grid fig14 sweeps: any drift here would
        // change the committed EXPERIMENTS.md bytes.
        for ratio in [0.0, 0.01, 0.02, 0.04, 0.06, 0.08, 0.10, 0.12] {
            let model = IidFaultModel::new(720, ratio);
            for seed in 0..20u64 {
                let mut fast = StdRng::seed_from_u64(seed);
                let mut oracle = StdRng::seed_from_u64(seed);
                assert_eq!(
                    model.sample_exact(&mut fast),
                    model.sample_exact_oracle(&mut oracle),
                    "ratio {ratio} seed {seed}"
                );
            }
        }
    }

    proptest::proptest! {
        /// The inlined Fisher–Yates must replicate the naive shuffle-take-sort
        /// oracle bit for bit: identical chosen set *and* identical RNG
        /// consumption (the trailing draws agree), for arbitrary sizes, ratios
        /// and seeds — the standing oracle-vs-fast-solver practice.
        #[test]
        fn fast_sampler_matches_the_oracle_bit_for_bit(
            nodes in 0usize..600,
            ratio_milli in 0usize..=1000,
            seed in 0u64..u64::MAX,
        ) {
            let model = IidFaultModel::new(nodes, ratio_milli as f64 / 1000.0);
            let mut fast = StdRng::seed_from_u64(seed);
            let mut oracle = StdRng::seed_from_u64(seed);
            proptest::prop_assert_eq!(
                model.sample_exact(&mut fast),
                model.sample_exact_oracle(&mut oracle)
            );
            proptest::prop_assert_eq!(fast.gen::<u64>(), oracle.gen::<u64>());
        }
    }

    #[test]
    fn consecutive_fault_probability_decays_exponentially() {
        let model = IidFaultModel::new(100, 0.05);
        assert!((model.consecutive_fault_probability(1) - 0.05).abs() < 1e-12);
        assert!((model.consecutive_fault_probability(2) - 0.0025).abs() < 1e-12);
        assert!(model.consecutive_fault_probability(3) < model.consecutive_fault_probability(2));
    }
}
