//! The i.i.d. node-fault model used for the "GPU waste ratio versus node fault
//! ratio" sweeps (Figs 14 and 22) and the aggregate-cost sweep (Fig 17d).
//!
//! Unlike the trace replay, these experiments do not care about temporal
//! dynamics: they ask "if a fraction `f` of nodes is faulty *right now*, how
//! much capacity does each architecture lose?". The model draws fault sets
//! either by including each node independently with probability `f`
//! ([`IidFaultModel::sample`]) or by choosing exactly `⌊f·n⌋` faulty nodes
//! uniformly at random ([`IidFaultModel::sample_exact`], which removes the
//! binomial noise and is what the smooth curves of Fig 14 use).

use hbd_types::NodeId;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Independent, identically distributed node-fault model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IidFaultModel {
    /// Number of nodes in the cluster.
    pub nodes: usize,
    /// Probability that any given node is faulty.
    pub fault_ratio: f64,
}

impl IidFaultModel {
    /// Creates a model. The ratio is clamped to `[0, 1]`.
    pub fn new(nodes: usize, fault_ratio: f64) -> Self {
        IidFaultModel {
            nodes,
            fault_ratio: fault_ratio.clamp(0.0, 1.0),
        }
    }

    /// Expected number of faulty nodes.
    pub fn expected_faulty_nodes(&self) -> f64 {
        self.nodes as f64 * self.fault_ratio
    }

    /// Draws a fault set by including each node independently with probability
    /// `fault_ratio`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<NodeId> {
        (0..self.nodes)
            .filter(|_| rng.gen::<f64>() < self.fault_ratio)
            .map(NodeId)
            .collect()
    }

    /// Draws a fault set with exactly `round(nodes × fault_ratio)` faulty
    /// nodes, chosen uniformly at random without replacement.
    pub fn sample_exact<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<NodeId> {
        let count = (self.nodes as f64 * self.fault_ratio).round() as usize;
        let count = count.min(self.nodes);
        let mut all: Vec<usize> = (0..self.nodes).collect();
        all.shuffle(rng);
        let mut chosen: Vec<NodeId> = all.into_iter().take(count).map(NodeId).collect();
        chosen.sort();
        chosen
    }

    /// Probability that a run of `k` *consecutive* nodes is entirely faulty —
    /// the quantity the Appendix-C analysis calls "fault non-locality":
    /// consecutive multi-node failures decay exponentially with the run length.
    pub fn consecutive_fault_probability(&self, k: u32) -> f64 {
        self.fault_ratio.powi(k as i32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ratio_is_clamped() {
        assert_eq!(IidFaultModel::new(10, -0.5).fault_ratio, 0.0);
        assert_eq!(IidFaultModel::new(10, 1.5).fault_ratio, 1.0);
    }

    #[test]
    fn sample_exact_returns_requested_count() {
        let model = IidFaultModel::new(720, 0.05);
        let mut rng = StdRng::seed_from_u64(11);
        let faults = model.sample_exact(&mut rng);
        assert_eq!(faults.len(), 36);
        // Sorted and unique.
        assert!(faults.windows(2).all(|w| w[0] < w[1]));
        assert!(faults.iter().all(|n| n.index() < 720));
    }

    #[test]
    fn bernoulli_sample_is_near_the_expectation() {
        let model = IidFaultModel::new(10_000, 0.0233);
        let mut rng = StdRng::seed_from_u64(5);
        let faults = model.sample(&mut rng);
        let ratio = faults.len() as f64 / 10_000.0;
        assert!((ratio - 0.0233).abs() < 0.005, "observed ratio {ratio}");
        assert!((model.expected_faulty_nodes() - 233.0).abs() < 1e-9);
    }

    #[test]
    fn extreme_ratios() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(IidFaultModel::new(100, 0.0)
            .sample_exact(&mut rng)
            .is_empty());
        assert_eq!(
            IidFaultModel::new(100, 1.0).sample_exact(&mut rng).len(),
            100
        );
        assert!(IidFaultModel::new(100, 0.0).sample(&mut rng).is_empty());
    }

    #[test]
    fn consecutive_fault_probability_decays_exponentially() {
        let model = IidFaultModel::new(100, 0.05);
        assert!((model.consecutive_fault_probability(1) - 0.05).abs() < 1e-12);
        assert!((model.consecutive_fault_probability(2) - 0.0025).abs() < 1e-12);
        assert!(model.consecutive_fault_probability(3) < model.consecutive_fault_probability(2));
    }
}
