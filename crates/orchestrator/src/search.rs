//! Search for the largest orchestratable job (the capacity-planning question
//! behind Figs 15 / 17b: "how big a job can this faulty cluster still place?").
//!
//! Feasibility of a job size is decided by a full `Orchestration-Fat-Tree`
//! run, which is expensive; like the constraint search in
//! [`FatTreeOrchestrator::orchestrate_par`], the job-size search is a
//! fixed-ladder multisection: every round probes up to
//! [`FatTreeOrchestrator::SEARCH_PROBES`] evenly spaced job sizes and fans the
//! independent feasibility checks out over scoped threads. The ladder never
//! depends on the thread count, so the result is identical for `--threads 1`
//! and `--threads N`.
//!
//! Because the orchestrator's per-search scratch depends only on
//! `(k, nodes_per_group, faults)` — never on the probed job size — the whole
//! job-size ladder shares **one** scratch instead of rebuilding it inside
//! every feasibility probe.

use crate::fat_tree::{FatTreeOrchestrator, OrchestrationRequest, SearchScratch};
use crate::scheme::PlacementScheme;
use hbd_types::par::par_map;
use topology::FaultSet;

/// The outcome of [`max_orchestratable_job`].
#[derive(Debug, Clone)]
pub struct MaxJobReport {
    /// The largest feasible job size, in nodes (a multiple of
    /// `nodes_per_group`); zero when not even one TP group fits.
    pub job_nodes: usize,
    /// The placement realising that job.
    pub placement: Option<PlacementScheme>,
    /// How many feasibility probes (full orchestration runs) the search spent.
    pub probes: usize,
}

/// Finds the largest job (in nodes, quantised to whole TP groups) that
/// `orchestrator` can place under `faults`, fanning the per-round feasibility
/// probes out over up to `threads` scoped threads.
pub fn max_orchestratable_job(
    orchestrator: &FatTreeOrchestrator,
    nodes_per_group: usize,
    k: usize,
    faults: &FaultSet,
    threads: usize,
) -> MaxJobReport {
    let total_groups = orchestrator.fat_tree().nodes() / nodes_per_group.max(1);
    // One scratch for the whole ladder. A degenerate geometry
    // (`nodes_per_group == 0` or `k == 0`) cannot build a scratch; every
    // probe of the old per-probe path would fail request validation, so the
    // search runs without one and each probe rejects itself.
    let template = OrchestrationRequest {
        job_nodes: nodes_per_group.max(1),
        nodes_per_group,
        k,
    };
    let scratch = template
        .validate()
        .ok()
        .map(|_| orchestrator.search_scratch(&template, faults));
    let try_groups = |groups: usize| -> Option<PlacementScheme> {
        let request = OrchestrationRequest {
            job_nodes: groups * nodes_per_group,
            nodes_per_group,
            k,
        };
        match &scratch {
            Some(scratch) => orchestrator
                .orchestrate_with_scratch(&request, scratch, 1)
                .0
                .ok(),
            None => orchestrator.orchestrate(&request, faults).ok(),
        }
    };
    max_job_search(total_groups, nodes_per_group, threads, try_groups)
}

/// [`max_orchestratable_job`] against a caller-provided scratch (the
/// placement service's path, where one scratch per `(k, nodes_per_group)` key
/// is shared across a whole query batch). The caller guarantees the scratch
/// was built for the same `k` / `nodes_per_group` against the fault set being
/// queried, and that both are positive. Probes run sequentially — the service
/// fans out across queries, not inside one.
pub(crate) fn max_job_with_scratch(
    orchestrator: &FatTreeOrchestrator,
    nodes_per_group: usize,
    k: usize,
    scratch: &SearchScratch,
) -> MaxJobReport {
    debug_assert!(nodes_per_group > 0 && k > 0);
    let total_groups = orchestrator.fat_tree().nodes() / nodes_per_group.max(1);
    let try_groups = |groups: usize| -> Option<PlacementScheme> {
        let request = OrchestrationRequest {
            job_nodes: groups * nodes_per_group,
            nodes_per_group,
            k,
        };
        orchestrator
            .orchestrate_with_scratch(&request, scratch, 1)
            .0
            .ok()
    };
    max_job_search(total_groups, nodes_per_group, 1, try_groups)
}

/// The fixed-ladder multisection over job sizes shared by both entry points.
/// `try_groups(g)` decides feasibility of a `g`-group job; the ladder (and so
/// the reported probe count) depends only on which probes are feasible, never
/// on `threads`.
fn max_job_search<F>(
    total_groups: usize,
    nodes_per_group: usize,
    threads: usize,
    try_groups: F,
) -> MaxJobReport
where
    F: Fn(usize) -> Option<PlacementScheme> + Sync,
{
    let mut low = 1usize;
    let mut high = total_groups;
    let mut best: Option<(usize, PlacementScheme)> = None;
    let mut probes_spent = 0usize;
    while low <= high {
        let probes = FatTreeOrchestrator::probe_ladder(low, high);
        probes_spent += probes.len();
        // Feasibility is antitone in the job size: scan the evaluated ladder
        // for the largest feasible probe.
        let hit = if threads > 1 {
            let placements = par_map(threads, &probes, |_, &g| try_groups(g));
            probes
                .iter()
                .zip(placements)
                .rev()
                .find_map(|(&g, placement)| placement.map(|p| (g, p)))
        } else {
            probes
                .iter()
                .rev()
                .find_map(|&g| try_groups(g).map(|p| (g, p)))
        };
        match hit {
            Some((g, placement)) => {
                if let Some(&next) = probes.iter().find(|&&p| p > g) {
                    high = next - 1;
                }
                best = Some((g, placement));
                low = g + 1;
            }
            None => {
                if low <= 1 {
                    break;
                }
                high = low - 1;
            }
        }
    }

    match best {
        Some((groups, placement)) => MaxJobReport {
            job_nodes: groups * nodes_per_group,
            placement: Some(placement),
            probes: probes_spent,
        },
        None => MaxJobReport {
            job_nodes: 0,
            placement: None,
            probes: probes_spent,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbd_types::NodeId;
    use topology::FatTree;

    fn orchestrator() -> FatTreeOrchestrator {
        FatTreeOrchestrator::new(FatTree::new(512, 16, 8).unwrap()).unwrap()
    }

    #[test]
    fn healthy_cluster_supports_every_group() {
        let orch = orchestrator();
        let report = max_orchestratable_job(&orch, 8, 2, &FaultSet::new(), 1);
        assert_eq!(report.job_nodes, 512);
        assert!(report.placement.is_some());
        assert!(report.probes > 0);
    }

    #[test]
    fn result_is_maximal_and_thread_count_invariant() {
        let orch = orchestrator();
        let faults = FaultSet::from_nodes((0..40).map(|i| NodeId(i * 11)));
        let seq = max_orchestratable_job(&orch, 8, 2, &faults, 1);
        let par = max_orchestratable_job(&orch, 8, 2, &faults, 4);
        assert_eq!(seq.job_nodes, par.job_nodes);
        assert_eq!(seq.probes, par.probes);
        assert!(seq.job_nodes > 0);
        assert!(seq.job_nodes < 512, "40 faulty nodes must cost capacity");
        // Maximality: one more group must be infeasible.
        let request = OrchestrationRequest {
            job_nodes: seq.job_nodes + 8,
            nodes_per_group: 8,
            k: 2,
        };
        assert!(orch.orchestrate(&request, &faults).is_err());
    }

    #[test]
    fn shared_scratch_path_matches_the_public_search() {
        let orch = orchestrator();
        let faults = FaultSet::from_nodes((0..25).map(|i| NodeId(i * 7)));
        let template = OrchestrationRequest {
            job_nodes: 8,
            nodes_per_group: 8,
            k: 2,
        };
        let scratch = orch.search_scratch(&template, &faults);
        let shared = max_job_with_scratch(&orch, 8, 2, &scratch);
        let public = max_orchestratable_job(&orch, 8, 2, &faults, 1);
        assert_eq!(shared.job_nodes, public.job_nodes);
        assert_eq!(shared.probes, public.probes);
        assert_eq!(shared.placement, public.placement);
    }

    #[test]
    fn degenerate_geometry_is_rejected_not_panicked() {
        let orch = orchestrator();
        let report = max_orchestratable_job(&orch, 0, 2, &FaultSet::new(), 1);
        assert_eq!(report.job_nodes, 0);
        let report = max_orchestratable_job(&orch, 8, 0, &FaultSet::new(), 2);
        assert_eq!(report.job_nodes, 0);
    }

    #[test]
    fn fully_faulty_cluster_supports_nothing() {
        let orch = orchestrator();
        let faults = FaultSet::from_nodes((0..512).map(NodeId));
        let report = max_orchestratable_job(&orch, 8, 2, &faults, 2);
        assert_eq!(report.job_nodes, 0);
        assert!(report.placement.is_none());
    }
}
