//! `Orchestration-DCN-Free` — Algorithm 2 of the paper.
//!
//! Without DCN considerations, placing TP groups on InfiniteHBD is simple:
//!
//! 1. remove the faulty nodes from the K-Hop graph,
//! 2. find the connected components of the healthy subgraph,
//! 3. sort each component in HBD (deployment) order, and
//! 4. cut every component into consecutive runs of `m = TP / R` nodes.
//!
//! Because each component is a contiguous stretch of the K-Hop line (faults of
//! fewer than `K` consecutive nodes do not disconnect it), every emitted run is
//! ring-formable via the intra-node loopback of its two end bundles.
//!
//! The paper phrases step 2 as a DFS over the healthy subgraph, but on a K-Hop
//! line the components are simply the maximal healthy runs not severed by `K`
//! or more consecutive faults — so the implementation is a single linear scan
//! ([`topology::runscan`]) that cuts groups as it walks, with no graph, no
//! DFS and no per-probe allocations. The original graph + DFS formulation is
//! kept below as a `#[cfg(test)]` oracle and the two are pinned to each other
//! bit-for-bit (same groups, same nodes, same order) by proptests.

use crate::scheme::{PlacementScheme, TpGroup};
use hbd_types::NodeId;
use topology::runscan::{scan_khop_runs, RunSink};
use topology::FaultSet;

/// A [`RunSink`] that cuts the healthy runs into TP groups of `m` nodes as
/// the scan progresses: complete groups are emitted greedily in scan order;
/// the incomplete remainder of a run is discarded when the run ends.
pub(crate) struct GroupCutter {
    nodes_per_group: usize,
    current: Vec<NodeId>,
    /// The completed groups, in scan order.
    pub(crate) scheme: PlacementScheme,
}

impl GroupCutter {
    pub(crate) fn new(nodes_per_group: usize) -> Self {
        assert!(nodes_per_group > 0, "TP groups need at least one node");
        GroupCutter {
            nodes_per_group,
            current: Vec::with_capacity(nodes_per_group),
            scheme: PlacementScheme::new(),
        }
    }
}

impl RunSink<NodeId> for GroupCutter {
    fn healthy(&mut self, node: NodeId) {
        self.current.push(node);
        if self.current.len() == self.nodes_per_group {
            let group =
                std::mem::replace(&mut self.current, Vec::with_capacity(self.nodes_per_group));
            self.scheme.push(TpGroup::new(group));
        }
    }

    fn cut(&mut self) {
        // The run ended with an incomplete group: those nodes are wasted.
        self.current.clear();
    }
}

/// Runs Algorithm 2 over an explicit node ordering.
///
/// * `order` — the nodes in HBD (deployment) order; adjacent elements are HBD
///   neighbours.
/// * `k` — the OCSTrx bundle count (hop reach) of the topology.
/// * `faults` — the faulty node set.
/// * `nodes_per_group` — `m`, the nodes per TP group.
///
/// Returns the placement scheme that maximises GPU utilisation (every healthy
/// component is packed greedily).
pub fn orchestrate_dcn_free(
    order: &[NodeId],
    k: usize,
    faults: &FaultSet,
    nodes_per_group: usize,
) -> PlacementScheme {
    let mut cutter = GroupCutter::new(nodes_per_group);
    scan_khop_runs(
        order.iter().copied(),
        k,
        |node| faults.is_faulty(*node),
        &mut cutter,
    );
    cutter.scheme
}

/// The original graph + DFS formulation of Algorithm 2, kept as the test
/// oracle for the linear-scan fast path (see the module docs and the
/// oracle-vs-fast-solver pattern in `ROADMAP.md`).
#[cfg(test)]
pub(crate) fn orchestrate_dcn_free_graph_oracle(
    order: &[NodeId],
    k: usize,
    faults: &FaultSet,
    nodes_per_group: usize,
) -> PlacementScheme {
    use topology::NodeGraph;

    assert!(nodes_per_group > 0, "TP groups need at least one node");
    assert!(k > 0, "K must be at least 1");
    if order.is_empty() {
        return PlacementScheme::new();
    }

    // Build the K-hop graph over *positions* in the given order, then map back
    // to node ids. Using positions keeps the graph dense even when `order` is
    // a subset of the cluster (e.g. one sub-line of the fat-tree deployment).
    let mut graph = NodeGraph::new(order.len());
    for i in 0..order.len() {
        for hop in 1..=k {
            if i + hop < order.len() {
                graph.add_edge(NodeId(i), NodeId(i + hop));
            }
        }
    }

    // Healthy subgraph + connected components (the DFS of Algorithm 2).
    let healthy_positions: Vec<NodeId> = order
        .iter()
        .enumerate()
        .filter(|(_, node)| !faults.is_faulty(**node))
        .map(|(i, _)| NodeId(i))
        .collect();
    let healthy_graph = graph
        .induced_subgraph(|pos| pos.index() < order.len() && !faults.is_faulty(order[pos.index()]));
    let components = healthy_graph.connected_components(&healthy_positions);

    // Cut each component (already sorted in HBD order) into groups of m.
    let mut scheme = PlacementScheme::new();
    for component in components {
        let nodes: Vec<NodeId> = component.iter().map(|pos| order[pos.index()]).collect();
        for chunk in nodes.chunks(nodes_per_group) {
            if chunk.len() == nodes_per_group {
                scheme.push(TpGroup::new(chunk.to_vec()));
            }
        }
    }
    scheme
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BTreeSet;

    fn order(n: usize) -> Vec<NodeId> {
        (0..n).map(NodeId).collect()
    }

    fn faults(nodes: &[usize]) -> FaultSet {
        FaultSet::from_nodes(nodes.iter().map(|&n| NodeId(n)))
    }

    #[test]
    fn healthy_cluster_is_packed_completely() {
        let scheme = orchestrate_dcn_free(&order(32), 2, &FaultSet::new(), 8);
        assert_eq!(scheme.len(), 4);
        assert_eq!(scheme.nodes_placed(), 32);
        assert!(scheme.validate(8, &BTreeSet::new()).is_ok());
        // Groups follow deployment order.
        assert_eq!(scheme.groups[0].nodes[0], NodeId(0));
        assert_eq!(scheme.groups[3].nodes[7], NodeId(31));
    }

    #[test]
    fn single_fault_is_bypassed_and_costs_at_most_one_group() {
        let scheme = orchestrate_dcn_free(&order(33), 2, &faults(&[5]), 8);
        // 32 healthy nodes remain in one component -> 4 groups.
        assert_eq!(scheme.len(), 4);
        let placed: BTreeSet<NodeId> = scheme
            .groups
            .iter()
            .flat_map(|g| g.nodes.iter().copied())
            .collect();
        assert!(!placed.contains(&NodeId(5)));
    }

    #[test]
    fn unbypassable_fault_run_splits_components() {
        // K = 2, two consecutive faults split the line; each side packs its own
        // groups and the remainders are wasted independently.
        let scheme = orchestrate_dcn_free(&order(20), 2, &faults(&[9, 10]), 4);
        // Left component: nodes 0..8 (9 nodes) -> 2 groups; right: 11..19 (9) -> 2.
        assert_eq!(scheme.len(), 4);
        // With K = 3 the same faults are bypassed: 18 healthy nodes -> 4 groups
        // in one component plus the remainder.
        let scheme3 = orchestrate_dcn_free(&order(20), 3, &faults(&[9, 10]), 4);
        assert_eq!(scheme3.len(), 4);
        assert_eq!(scheme3.nodes_placed(), 16);
    }

    #[test]
    fn groups_never_contain_faulty_nodes() {
        let f = faults(&[1, 7, 13]);
        let scheme = orchestrate_dcn_free(&order(24), 3, &f, 4);
        let faulty: BTreeSet<NodeId> = f.iter().collect();
        assert!(scheme.validate(4, &faulty).is_ok());
    }

    #[test]
    fn empty_inputs_produce_empty_schemes() {
        assert!(orchestrate_dcn_free(&[], 2, &FaultSet::new(), 4).is_empty());
        let all_faulty = faults(&[0, 1, 2, 3]);
        assert!(orchestrate_dcn_free(&order(4), 2, &all_faulty, 2).is_empty());
    }

    #[test]
    fn works_on_non_contiguous_node_orderings() {
        // A sub-line of the deployment: nodes 0, 16, 32, 48 are HBD neighbours
        // even though their ids are far apart.
        let subline: Vec<NodeId> = (0..8).map(|i| NodeId(i * 16)).collect();
        let scheme = orchestrate_dcn_free(&subline, 2, &faults(&[32]), 2);
        // 7 healthy nodes in one component -> 3 groups of 2.
        assert_eq!(scheme.len(), 3);
        for group in &scheme.groups {
            for node in &group.nodes {
                assert_eq!(node.index() % 16, 0);
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_group_size_is_rejected() {
        let _ = orchestrate_dcn_free(&order(4), 2, &FaultSet::new(), 0);
    }

    /// Random Algorithm-2 instances: an arbitrary (non-monotonic) node order,
    /// a random fault set drawn from the same id space, and random `K` / `m`.
    fn arbitrary_instance() -> impl Strategy<Value = (Vec<NodeId>, FaultSet, usize, usize)> {
        (
            proptest::collection::btree_set(0usize..200, 0..48),
            proptest::collection::btree_set(0usize..200, 0..32),
            1usize..5,
            1usize..6,
        )
            .prop_map(|(ids, faulty, k, m)| {
                // A sorted id set would only exercise ascending orders; flip
                // the tail half so the scan sees a genuinely positional (not
                // id-ordered) HBD line, like a fat-tree sub-line does.
                let mut order: Vec<NodeId> = ids.into_iter().map(NodeId).collect();
                let half = order.len() / 2;
                order[half..].reverse();
                let faults = FaultSet::from_nodes(faulty.into_iter().map(NodeId));
                (order, faults, k, m)
            })
    }

    proptest! {
        /// The linear-scan kernel is pinned bit-for-bit to the graph + DFS
        /// oracle: same groups, same `NodeId`s, same order (`PlacementScheme`
        /// equality is exact — no floats involved).
        #[test]
        fn linear_scan_matches_graph_oracle(
            (order, faults, k, m) in arbitrary_instance()
        ) {
            let fast = orchestrate_dcn_free(&order, k, &faults, m);
            let oracle = orchestrate_dcn_free_graph_oracle(&order, k, &faults, m);
            prop_assert_eq!(fast, oracle);
        }

        /// Dense fault runs around the `K` threshold are the interesting
        /// regime (a run of `K − 1` is bypassed, `K` severs): force them by
        /// making every `stride`-th node faulty in blocks.
        #[test]
        fn linear_scan_matches_oracle_on_periodic_fault_runs(
            n in 1usize..64,
            run in 1usize..5,
            stride in 1usize..9,
            k in 1usize..5,
            m in 1usize..6,
        ) {
            let period = run + stride;
            let faults = FaultSet::from_nodes(
                (0..n).filter(|i| i % period < run).map(NodeId),
            );
            let order: Vec<NodeId> = (0..n).map(NodeId).collect();
            let fast = orchestrate_dcn_free(&order, k, &faults, m);
            let oracle = orchestrate_dcn_free_graph_oracle(&order, k, &faults, m);
            prop_assert_eq!(fast, oracle);
        }
    }
}
