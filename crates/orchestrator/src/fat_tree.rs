//! `Placement-Fat-Tree` and the binary-search driver `Orchestration-Fat-Tree`
//! (Algorithms 1, 4 and 5 of the paper).
//!
//! The Fat-Tree DCN adds two constraints on top of the DCN-free orchestration:
//!
//! * **Aggregation-domain constraint** — a TP group should not span two
//!   aggregation-switch domains (its pipeline / context traffic would cross the
//!   core layer);
//! * **Alignment constraint** — every node under one ToR should carry the same
//!   TP-group rank, so the orthogonal DP/CP traffic stays under the ToR. To
//!   preserve alignment in the presence of faults, a fault under an "aligned"
//!   ToR takes the whole ToR out of service (expanding the failure radius by a
//!   factor of `p`), which costs capacity.
//!
//! Because constraints cost capacity, Algorithm 5 binary-searches the number of
//! applied constraints: it keeps as many as possible while still finding enough
//! healthy nodes for the job. Sub-line-segment constraints are applied first
//! (cheap), ToR-alignment constraints second (expensive), matching the paper's
//! ordering ("first relaxes the TP Group alignment constraints ... then relaxes
//! the TP Group crossing constraints").

use crate::dcn_free::orchestrate_dcn_free;
use crate::deployment::DeploymentStrategy;
use crate::scheme::PlacementScheme;
use hbd_types::{HbdError, NodeId, Result};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use topology::{FatTree, FaultSet};

/// What the job needs from the orchestrator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OrchestrationRequest {
    /// Number of nodes the job needs (`s / r` in the paper's notation).
    pub job_nodes: usize,
    /// Nodes per TP group (`m = t / r`).
    pub nodes_per_group: usize,
    /// OCSTrx bundle count of the K-Hop topology.
    pub k: usize,
}

impl OrchestrationRequest {
    /// Validates the request.
    pub fn validate(&self) -> Result<()> {
        if self.nodes_per_group == 0 {
            return Err(HbdError::invalid_config("nodes_per_group must be positive"));
        }
        if self.k == 0 {
            return Err(HbdError::invalid_config("K must be positive"));
        }
        if self.job_nodes == 0 {
            return Err(HbdError::invalid_config(
                "job must request at least one node",
            ));
        }
        Ok(())
    }
}

/// The Fat-Tree-aware orchestrator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FatTreeOrchestrator {
    deployment: DeploymentStrategy,
    fat_tree: FatTree,
}

impl FatTreeOrchestrator {
    /// Creates an orchestrator for the given Fat-Tree DCN. The deployment
    /// wiring (Algorithm 3) is derived from the same rack layout.
    pub fn new(fat_tree: FatTree) -> Result<Self> {
        let deployment = DeploymentStrategy::new(fat_tree.nodes(), fat_tree.nodes_per_tor())?;
        Ok(FatTreeOrchestrator {
            deployment,
            fat_tree,
        })
    }

    /// The underlying deployment wiring.
    pub fn deployment(&self) -> &DeploymentStrategy {
        &self.deployment
    }

    /// The DCN this orchestrator targets.
    pub fn fat_tree(&self) -> &FatTree {
        &self.fat_tree
    }

    /// Number of sub-line segments (one per sub-line per aggregation domain) —
    /// the pool of "segment" constraints available to the binary search.
    pub fn segment_constraints(&self) -> usize {
        self.fat_tree.aggregation_domains() * self.deployment.sublines()
    }

    /// Number of aggregation domains — the pool of "alignment" constraints.
    pub fn alignment_constraints(&self) -> usize {
        self.fat_tree.aggregation_domains()
    }

    /// `Placement-Fat-Tree` (Algorithm 4): places TP groups with the first
    /// `n_constraints` constraints applied.
    pub fn placement_with_constraints(
        &self,
        request: &OrchestrationRequest,
        faults: &FaultSet,
        n_constraints: usize,
    ) -> PlacementScheme {
        let p = self.deployment.sublines();
        let tors_per_domain = self.fat_tree.nodes_per_aggregation_domain() / p;
        let n_segments = self.segment_constraints();
        let constrained_segments = n_constraints.min(n_segments);
        let aligned_domains = n_constraints.saturating_sub(n_segments);

        // Alignment constraint: inside the first `aligned_domains` domains, a
        // faulty node takes its whole ToR out of service so the surviving nodes
        // keep matching ranks.
        let mut effective = faults.clone();
        for node in faults.iter() {
            let domain = node.index() / self.fat_tree.nodes_per_aggregation_domain();
            if domain < aligned_domains {
                let tor_start = node.index() / p * p;
                for peer in tor_start..(tor_start + p).min(self.fat_tree.nodes()) {
                    effective.add(NodeId(peer));
                }
            }
        }

        let mut scheme = PlacementScheme::new();
        let mut consumed: BTreeSet<NodeId> = BTreeSet::new();

        // Segment constraint: the first `constrained_segments` sub-line
        // segments each place their TP groups entirely within themselves
        // (same sub-line, same aggregation domain).
        'segments: for seg in 0..constrained_segments {
            let domain = seg / p;
            let subline = seg % p;
            let Ok(nodes) = self
                .deployment
                .subline_segment(subline, domain, tors_per_domain)
            else {
                break 'segments;
            };
            let placed =
                orchestrate_dcn_free(&nodes, request.k, &effective, request.nodes_per_group);
            for group in &placed.groups {
                consumed.extend(group.nodes.iter().copied());
            }
            consumed.extend(nodes);
            scheme.extend(placed);
        }

        // Residual: everything not consumed by a constrained segment is
        // orchestrated as one long HBD line (groups may now cross domains and
        // lose alignment — that is the relaxation).
        let residual: Vec<NodeId> = self
            .deployment
            .deployment_order()
            .into_iter()
            .filter(|n| !consumed.contains(n))
            .collect();
        let rest = orchestrate_dcn_free(&residual, request.k, &effective, request.nodes_per_group);
        scheme.extend(rest);

        self.assign_dp_ranks(&mut scheme);
        scheme
    }

    /// `Orchestration-Fat-Tree` (Algorithms 1 and 5): search the number of
    /// constraints, keeping as many as possible while still satisfying the
    /// job scale. Returns the placement truncated to the job's group count, or
    /// an error if even the fully relaxed placement cannot satisfy the job.
    ///
    /// Equivalent to [`orchestrate_par`](Self::orchestrate_par) with one
    /// thread (and guaranteed to return the same placement).
    pub fn orchestrate(
        &self,
        request: &OrchestrationRequest,
        faults: &FaultSet,
    ) -> Result<PlacementScheme> {
        self.orchestrate_par(request, faults, 1)
    }

    /// [`orchestrate`](Self::orchestrate) with a parallel constraint search.
    ///
    /// The paper's binary search probes one constraint count per round; this
    /// implementation is a *multisection* search that probes
    /// [`SEARCH_PROBES`](Self::SEARCH_PROBES) evenly spaced constraint counts
    /// per round and fans the (independent, expensive) placement evaluations
    /// out over up to `threads` scoped threads. The probe ladder is fixed —
    /// `threads` only changes how the probes are *evaluated*, never which
    /// probes are chosen — so the resulting placement is identical for every
    /// thread count, and with one thread the probes are evaluated lazily from
    /// the most constrained end. Keeping the ladder identical across thread
    /// counts is a deliberate trade-off: a `threads == 1` fallback to plain
    /// bisection would be cheaper in the worst case (one evaluation per
    /// halving instead of up to [`SEARCH_PROBES`](Self::SEARCH_PROBES) per
    /// third-ing) but could return a different placement wherever feasibility
    /// is not perfectly monotone in the constraint count, breaking the
    /// harness-wide thread-count-invariance guarantee.
    pub fn orchestrate_par(
        &self,
        request: &OrchestrationRequest,
        faults: &FaultSet,
        threads: usize,
    ) -> Result<PlacementScheme> {
        request.validate()?;
        let job_groups = request.job_nodes.div_ceil(request.nodes_per_group);
        let needed_nodes = job_groups * request.nodes_per_group;
        let feasible = |placement: &PlacementScheme| placement.nodes_placed() >= needed_nodes;

        let mut low = 0usize;
        let mut high = self.segment_constraints() + self.alignment_constraints();
        let mut best: Option<PlacementScheme> = None;
        while low <= high {
            let probes = Self::probe_ladder(low, high);
            // Find the most constrained feasible probe and the least
            // constrained infeasible probe directly above it.
            let hit = if threads > 1 {
                let placements = hbd_types::par::par_map(threads, &probes, |_, &n| {
                    self.placement_with_constraints(request, faults, n)
                });
                probes
                    .iter()
                    .zip(placements)
                    .rev()
                    .find(|(_, placement)| feasible(placement))
                    .map(|(&n, placement)| (n, placement))
            } else {
                probes.iter().rev().find_map(|&n| {
                    let placement = self.placement_with_constraints(request, faults, n);
                    feasible(&placement).then_some((n, placement))
                })
            };
            match hit {
                Some((n, placement)) => {
                    // Everything above `n` up to the next probe is still open;
                    // everything from the next probe on is ruled out.
                    if let Some(&next) = probes.iter().find(|&&p| p > n) {
                        high = next - 1;
                    }
                    best = Some(placement);
                    low = n + 1;
                }
                None => {
                    // The least constrained probe (== `low`) is infeasible.
                    if low == 0 {
                        break;
                    }
                    high = low - 1;
                }
            }
        }

        let mut placement = best.ok_or_else(|| {
            HbdError::infeasible(format!(
                "job needs {needed_nodes} nodes but the cluster cannot provide them under the current fault pattern"
            ))
        })?;
        placement.truncate(job_groups);
        Ok(placement)
    }

    /// Probes per multisection round of the constraint / job-size searches.
    pub const SEARCH_PROBES: usize = 4;

    /// Evenly spaced probe points covering `[low, high]`, endpoints included,
    /// at most [`SEARCH_PROBES`](Self::SEARCH_PROBES) of them, strictly
    /// increasing.
    pub(crate) fn probe_ladder(low: usize, high: usize) -> Vec<usize> {
        debug_assert!(low <= high);
        let span = high - low + 1;
        let count = Self::SEARCH_PROBES.min(span);
        if count <= 1 {
            return vec![low];
        }
        let mut probes: Vec<usize> = (0..count)
            .map(|i| low + (high - low) * i / (count - 1))
            .collect();
        probes.dedup();
        probes
    }

    /// Orders the groups for DP-rank assignment so that groups whose rank-0
    /// nodes share a ToR (and hence, under alignment, share every rank's ToR)
    /// become DP neighbours — the "align ranks within each ToR" objective.
    fn assign_dp_ranks(&self, scheme: &mut PlacementScheme) {
        scheme.groups.sort_by_key(|group| {
            let head = group.nodes.first().copied().unwrap_or(NodeId(0));
            let tor = head.index() / self.deployment.sublines();
            let domain = head.index() / self.fat_tree.nodes_per_aggregation_domain();
            (domain, tor, head.index())
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traffic::{cross_tor_rate, TrafficModel};
    use std::collections::BTreeSet;

    fn orchestrator() -> FatTreeOrchestrator {
        // 512 nodes, 16 per ToR, 8 ToRs per aggregation domain (so one sub-line
        // segment can host a full 8-node TP group, as in the paper's 8k-GPU
        // setup).
        FatTreeOrchestrator::new(FatTree::new(512, 16, 8).unwrap()).unwrap()
    }

    fn request(job_nodes: usize) -> OrchestrationRequest {
        OrchestrationRequest {
            job_nodes,
            nodes_per_group: 8,
            k: 2,
        }
    }

    #[test]
    fn constraint_pools_match_layout() {
        let orch = orchestrator();
        assert_eq!(orch.alignment_constraints(), 4);
        assert_eq!(orch.segment_constraints(), 4 * 16);
    }

    #[test]
    fn healthy_cluster_satisfies_large_jobs_with_full_constraints() {
        let orch = orchestrator();
        let placement = orch.orchestrate(&request(384), &FaultSet::new()).unwrap();
        assert!(placement.nodes_placed() >= 384);
        assert!(placement.validate(8, &BTreeSet::new()).is_ok());
    }

    #[test]
    fn orchestrated_placement_has_near_zero_cross_tor_traffic() {
        let orch = orchestrator();
        let faults = FaultSet::from_nodes((0..10).map(|i| NodeId(i * 37)));
        let placement = orch.orchestrate(&request(400), &faults).unwrap();
        let rate = cross_tor_rate(&placement, orch.fat_tree(), &TrafficModel::paper_tp32());
        assert!(
            rate < 0.02,
            "optimized cross-ToR rate should be near zero, got {rate}"
        );
    }

    #[test]
    fn relaxing_constraints_increases_capacity() {
        let orch = orchestrator();
        // Concentrated faults in domain 0 make constrained placement expensive.
        let faults = FaultSet::from_nodes((0..32).map(NodeId));
        let req = request(400);
        let strict = orch.placement_with_constraints(
            &req,
            &faults,
            orch.segment_constraints() + orch.alignment_constraints(),
        );
        let relaxed = orch.placement_with_constraints(&req, &faults, 0);
        assert!(relaxed.nodes_placed() >= strict.nodes_placed());
    }

    #[test]
    fn oversized_jobs_are_rejected() {
        let orch = orchestrator();
        assert!(orch.orchestrate(&request(1000), &FaultSet::new()).is_err());
        // Invalid request parameters are rejected too.
        let bad = OrchestrationRequest {
            job_nodes: 0,
            nodes_per_group: 8,
            k: 2,
        };
        assert!(orch.orchestrate(&bad, &FaultSet::new()).is_err());
    }

    #[test]
    fn parallel_search_matches_sequential() {
        let orch = orchestrator();
        let faults = FaultSet::from_nodes((0..24).map(|i| NodeId(i * 17)));
        let req = request(400);
        let seq = orch.orchestrate(&req, &faults).unwrap();
        let par = orch.orchestrate_par(&req, &faults, 4).unwrap();
        assert_eq!(seq, par);
        let wide = orch.orchestrate_par(&req, &faults, 16).unwrap();
        assert_eq!(seq, wide);
    }

    #[test]
    fn probe_ladder_is_sane() {
        assert_eq!(FatTreeOrchestrator::probe_ladder(3, 3), vec![3]);
        assert_eq!(FatTreeOrchestrator::probe_ladder(0, 2), vec![0, 1, 2]);
        let ladder = FatTreeOrchestrator::probe_ladder(0, 68);
        assert_eq!(ladder.first(), Some(&0));
        assert_eq!(ladder.last(), Some(&68));
        assert!(ladder.windows(2).all(|w| w[0] < w[1]));
        assert!(ladder.len() <= FatTreeOrchestrator::SEARCH_PROBES);
    }

    #[test]
    fn placement_never_uses_faulty_nodes() {
        let orch = orchestrator();
        let faults = FaultSet::from_nodes((0..40).map(|i| NodeId(i * 11)));
        let placement = orch.orchestrate(&request(300), &faults).unwrap();
        let faulty: BTreeSet<NodeId> = faults.iter().collect();
        assert!(placement.validate(8, &faulty).is_ok());
    }

    #[test]
    fn groups_respect_the_requested_size() {
        let orch = orchestrator();
        let placement = orch.orchestrate(&request(128), &FaultSet::new()).unwrap();
        assert!(placement.groups.iter().all(|g| g.len() == 8));
        assert_eq!(placement.len(), 16);
    }
}
