//! `Placement-Fat-Tree` and the binary-search driver `Orchestration-Fat-Tree`
//! (Algorithms 1, 4 and 5 of the paper).
//!
//! The Fat-Tree DCN adds two constraints on top of the DCN-free orchestration:
//!
//! * **Aggregation-domain constraint** — a TP group should not span two
//!   aggregation-switch domains (its pipeline / context traffic would cross the
//!   core layer);
//! * **Alignment constraint** — every node under one ToR should carry the same
//!   TP-group rank, so the orthogonal DP/CP traffic stays under the ToR. To
//!   preserve alignment in the presence of faults, a fault under an "aligned"
//!   ToR takes the whole ToR out of service (expanding the failure radius by a
//!   factor of `p`), which costs capacity.
//!
//! Because constraints cost capacity, Algorithm 5 binary-searches the number of
//! applied constraints: it keeps as many as possible while still finding enough
//! healthy nodes for the job. Sub-line-segment constraints are applied first
//! (cheap), ToR-alignment constraints second (expensive), matching the paper's
//! ordering ("first relaxes the TP Group alignment constraints ... then relaxes
//! the TP Group crossing constraints").

use crate::dcn_free::{orchestrate_dcn_free, GroupCutter};
use crate::deployment::DeploymentStrategy;
use crate::scheme::PlacementScheme;
use hbd_types::{HbdError, NodeId, Result};
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use topology::runscan::scan_khop_runs;
use topology::{FatTree, FaultSet};

/// What the job needs from the orchestrator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OrchestrationRequest {
    /// Number of nodes the job needs (`s / r` in the paper's notation).
    pub job_nodes: usize,
    /// Nodes per TP group (`m = t / r`).
    pub nodes_per_group: usize,
    /// OCSTrx bundle count of the K-Hop topology.
    pub k: usize,
}

impl OrchestrationRequest {
    /// Validates the request.
    pub fn validate(&self) -> Result<()> {
        if self.nodes_per_group == 0 {
            return Err(HbdError::invalid_config("nodes_per_group must be positive"));
        }
        if self.k == 0 {
            return Err(HbdError::invalid_config("K must be positive"));
        }
        if self.job_nodes == 0 {
            return Err(HbdError::invalid_config(
                "job must request at least one node",
            ));
        }
        Ok(())
    }
}

/// The Fat-Tree-aware orchestrator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FatTreeOrchestrator {
    deployment: DeploymentStrategy,
    fat_tree: FatTree,
}

/// Per-search scratch of one constraint search (one
/// [`FatTreeOrchestrator::orchestrate_par`] call): everything the probe
/// ladder would otherwise recompute per probe, built once and shared
/// immutably across the probe-evaluation threads.
#[derive(Debug)]
pub(crate) struct SearchScratch {
    /// The deployment order (Algorithm 3). Layout-only (fault-independent),
    /// so patched scratches share it by `Arc`.
    order: Arc<Vec<NodeId>>,
    /// For every node id, the sub-line segment owning it (`usize::MAX` for
    /// nodes outside any segment, e.g. a trailing partial rack). Replaces the
    /// per-probe `consumed` set: a probe with `c` constrained segments keeps
    /// exactly the nodes with `owner >= c` in its residual pass. Layout-only,
    /// shared by `Arc` like `order`.
    owner: Arc<Vec<usize>>,
    /// Both memoized placement variants per segment, in segment order.
    /// Shorter than the segment pool when a segment is undefined for the
    /// layout (mirrors the `break` in the uncached loop). Each entry is
    /// `Arc`-shared so a patch carries clean segments over for free.
    segments: Vec<Arc<SegmentCache>>,
    /// `effective[a]` = the fault set with the ToR expansion applied in
    /// domains `< a`; `effective[0]` is the raw fault set.
    effective: Vec<FaultSet>,
    /// The fault set this scratch was built from — the source of the
    /// per-segment fingerprints: a segment's fingerprint is the fault words
    /// covering its aggregation domain, read out of this set with
    /// [`FaultSet::range_eq`] when a patch decides what to re-orchestrate.
    fingerprint: FaultSet,
}

/// The two placements a sub-line segment can contribute, depending only on
/// whether its aggregation domain is alignment-constrained.
#[derive(Debug)]
struct SegmentCache {
    raw: PlacementScheme,
    aligned: PlacementScheme,
}

/// What one `FatTreeOrchestrator::patch_scratch` call re-derived versus
/// carried over — the observability hook of the incremental publish path
/// (aggregated by the placement service into its patch tally).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScratchPatchStats {
    /// Sub-line segments with at least one placement variant re-orchestrated.
    pub segments_reorchestrated: usize,
    /// Sub-line segments carried over without re-orchestration.
    pub segments_reused: usize,
    /// Aggregation domains whose fault words changed.
    pub domains_patched: usize,
}

impl ScratchPatchStats {
    /// Accumulates another patch's counts into `self`.
    pub fn absorb(&mut self, other: &ScratchPatchStats) {
        self.segments_reorchestrated += other.segments_reorchestrated;
        self.segments_reused += other.segments_reused;
        self.domains_patched += other.domains_patched;
    }
}

impl FatTreeOrchestrator {
    /// Creates an orchestrator for the given Fat-Tree DCN. The deployment
    /// wiring (Algorithm 3) is derived from the same rack layout.
    pub fn new(fat_tree: FatTree) -> Result<Self> {
        let deployment = DeploymentStrategy::new(fat_tree.nodes(), fat_tree.nodes_per_tor())?;
        Ok(FatTreeOrchestrator {
            deployment,
            fat_tree,
        })
    }

    /// The underlying deployment wiring.
    pub fn deployment(&self) -> &DeploymentStrategy {
        &self.deployment
    }

    /// The DCN this orchestrator targets.
    pub fn fat_tree(&self) -> &FatTree {
        &self.fat_tree
    }

    /// Number of sub-line segments (one per sub-line per aggregation domain) —
    /// the pool of "segment" constraints available to the binary search.
    pub fn segment_constraints(&self) -> usize {
        self.fat_tree.aggregation_domains() * self.deployment.sublines()
    }

    /// Number of aggregation domains — the pool of "alignment" constraints.
    pub fn alignment_constraints(&self) -> usize {
        self.fat_tree.aggregation_domains()
    }

    /// Expands one faulty node's failure radius to its whole ToR (the
    /// alignment-constraint cost: surviving rack peers keep matching ranks by
    /// leaving service together).
    fn expand_tor(&self, effective: &mut FaultSet, node: NodeId) {
        let p = self.deployment.sublines();
        let tor_start = node.index() / p * p;
        for peer in tor_start..(tor_start + p).min(self.fat_tree.nodes()) {
            effective.add(NodeId(peer));
        }
    }

    /// `Placement-Fat-Tree` (Algorithm 4): places TP groups with the first
    /// `n_constraints` constraints applied.
    ///
    /// This is the uncached single-probe entry point; the constraint search
    /// ([`orchestrate_par`](Self::orchestrate_par)) evaluates many probes
    /// against one fault set and reuses the shared per-search state
    /// (`SearchScratch`) instead. Both paths produce identical placements.
    pub fn placement_with_constraints(
        &self,
        request: &OrchestrationRequest,
        faults: &FaultSet,
        n_constraints: usize,
    ) -> PlacementScheme {
        let p = self.deployment.sublines();
        let tors_per_domain = self.fat_tree.nodes_per_aggregation_domain() / p;
        let n_segments = self.segment_constraints();
        let constrained_segments = n_constraints.min(n_segments);
        let aligned_domains = n_constraints.saturating_sub(n_segments);

        // Alignment constraint: inside the first `aligned_domains` domains, a
        // faulty node takes its whole ToR out of service so the surviving nodes
        // keep matching ranks. With no aligned domain the raw fault set is
        // borrowed as-is — no clone per probe.
        let expanded;
        let effective: &FaultSet = if aligned_domains == 0 {
            faults
        } else {
            let mut e = faults.clone();
            for node in faults.iter() {
                let domain = node.index() / self.fat_tree.nodes_per_aggregation_domain();
                if domain < aligned_domains {
                    self.expand_tor(&mut e, node);
                }
            }
            expanded = e;
            &expanded
        };

        let mut scheme = PlacementScheme::new();
        // Position bitmask over node ids: which nodes a constrained segment
        // consumed (placed or not).
        let mut consumed = vec![false; self.fat_tree.nodes()];

        // Segment constraint: the first `constrained_segments` sub-line
        // segments each place their TP groups entirely within themselves
        // (same sub-line, same aggregation domain).
        'segments: for seg in 0..constrained_segments {
            let domain = seg / p;
            let subline = seg % p;
            let Ok(nodes) = self
                .deployment
                .subline_segment(subline, domain, tors_per_domain)
            else {
                break 'segments;
            };
            let placed =
                orchestrate_dcn_free(&nodes, request.k, effective, request.nodes_per_group);
            for node in &nodes {
                consumed[node.index()] = true;
            }
            scheme.extend(placed);
        }

        // Residual: everything not consumed by a constrained segment is
        // orchestrated as one long HBD line (groups may now cross domains and
        // lose alignment — that is the relaxation). The linear-scan kernel
        // streams the filtered deployment order directly; no residual vector
        // is materialised.
        let mut cutter = GroupCutter::new(request.nodes_per_group);
        scan_khop_runs(
            self.deployment
                .deployment_order()
                .into_iter()
                .filter(|n| !consumed[n.index()]),
            request.k,
            |n| effective.is_faulty(*n),
            &mut cutter,
        );
        scheme.extend(cutter.scheme);

        self.assign_dp_ranks(&mut scheme);
        scheme
    }

    /// Builds the per-search scratch shared by every probe of one constraint
    /// search: the deployment order, the segment-ownership mask, the effective
    /// (ToR-expanded) fault set per `aligned_domains` value, and both
    /// placement variants of every sub-line segment.
    ///
    /// A segment's placement depends only on the segment and on whether its
    /// own aggregation domain is aligned: ToRs never straddle domains
    /// (`nodes_per_aggregation_domain = p × tors_per_domain`), so the ToR
    /// expansion sourced from other domains cannot touch the segment's nodes.
    /// Each segment is therefore orchestrated exactly twice per search — once
    /// raw, once aligned — instead of once per probe.
    pub(crate) fn search_scratch(
        &self,
        request: &OrchestrationRequest,
        faults: &FaultSet,
    ) -> SearchScratch {
        let p = self.deployment.sublines();
        let npd = self.fat_tree.nodes_per_aggregation_domain();
        let tors_per_domain = npd / p;
        let n_segments = self.segment_constraints();
        let n_domains = self.alignment_constraints();

        // effective[a] = faults with the ToR expansion applied in domains < a,
        // built incrementally (one domain's worth of expansion per step).
        let mut effective: Vec<FaultSet> = Vec::with_capacity(n_domains + 1);
        effective.push(faults.clone());
        for a in 1..=n_domains {
            let mut next = effective[a - 1].clone();
            for node in faults.iter() {
                if node.index() / npd == a - 1 {
                    self.expand_tor(&mut next, node);
                }
            }
            effective.push(next);
        }
        let fully_expanded = effective.last().expect("effective[0] always exists");

        let mut owner = vec![usize::MAX; self.fat_tree.nodes()];
        let mut segments = Vec::with_capacity(n_segments);
        for seg in 0..n_segments {
            let domain = seg / p;
            let subline = seg % p;
            let Ok(nodes) = self
                .deployment
                .subline_segment(subline, domain, tors_per_domain)
            else {
                break;
            };
            for node in &nodes {
                owner[node.index()] = seg;
            }
            segments.push(Arc::new(SegmentCache {
                raw: orchestrate_dcn_free(
                    &nodes,
                    request.k,
                    &effective[0],
                    request.nodes_per_group,
                ),
                aligned: orchestrate_dcn_free(
                    &nodes,
                    request.k,
                    fully_expanded,
                    request.nodes_per_group,
                ),
            }));
        }

        SearchScratch {
            order: Arc::new(self.deployment.deployment_order()),
            owner: Arc::new(owner),
            segments,
            effective,
            fingerprint: faults.clone(),
        }
    }

    /// Derives the scratch for `faults` from a scratch previously built (or
    /// patched) for the same `(k, nodes_per_group)` key under a different
    /// fault set — the incremental half of the oracle-vs-fast-solver pair
    /// whose oracle is the cold [`search_scratch`](Self::search_scratch)
    /// rebuild. Cost is proportional to the *delta* between the two fault
    /// sets, not the cluster:
    ///
    /// * the deployment order and ownership mask are layout-only and shared
    ///   by `Arc`;
    /// * an aggregation domain whose fault words are unchanged
    ///   ([`FaultSet::range_eq`] against the old scratch's fingerprint)
    ///   contributes nothing — its segments are `Arc`-cloned and its slices
    ///   of every effective set are already correct;
    /// * a dirty domain splices its new raw words into the effective sets
    ///   that keep it unexpanded and its rebuilt ToR expansion into the rest
    ///   ([`FaultSet::splice_range`]), exact because the ToR expansion never
    ///   crosses a domain boundary;
    /// * only segments whose own nodes' raw (resp. expanded) bits flipped
    ///   re-orchestrate their raw (resp. aligned) variant; every other
    ///   variant is carried over.
    ///
    /// Bit-exactness versus the cold rebuild follows from
    /// `orchestrate_dcn_free` being a deterministic function of the fault
    /// bits on the segment's own nodes: an unchanged fingerprint implies an
    /// identical placement, so cloning it is indistinguishable from
    /// recomputing it. Pinned field-for-field by the patch proptests below.
    pub(crate) fn patch_scratch(
        &self,
        request: &OrchestrationRequest,
        old: &SearchScratch,
        faults: &FaultSet,
    ) -> (SearchScratch, ScratchPatchStats) {
        let p = self.deployment.sublines();
        let npd = self.fat_tree.nodes_per_aggregation_domain();
        let tors_per_domain = npd / p;
        let n_domains = self.alignment_constraints();

        let mut effective = old.effective.clone();
        let mut raw_dirty = vec![false; old.segments.len()];
        let mut aligned_dirty = vec![false; old.segments.len()];
        let mut stats = ScratchPatchStats::default();
        let mark = |flags: &mut [bool], domain: usize, node: NodeId| {
            if let Some(flag) = flags.get_mut(domain * p + node.index() % p) {
                *flag = true;
            }
        };

        let old_expanded = old.effective.last().expect("effective[0] always exists");
        for domain in 0..n_domains {
            let (lo, hi) = (domain * npd, (domain + 1) * npd);
            if faults.range_eq(&old.fingerprint, lo, hi) {
                continue;
            }
            stats.domains_patched += 1;
            // Raw flips: mark the owning segment of every flipped node and
            // splice the new raw words into the effective sets that keep this
            // domain unexpanded (`a <= domain`).
            for node in faults.iter_range(lo, hi) {
                if !old.fingerprint.is_faulty(node) {
                    mark(&mut raw_dirty, domain, node);
                }
            }
            for node in old.fingerprint.iter_range(lo, hi) {
                if !faults.is_faulty(node) {
                    mark(&mut raw_dirty, domain, node);
                }
            }
            for eff in effective.iter_mut().take(domain + 1) {
                eff.splice_range(faults, lo, hi);
            }
            // Expanded flips: rebuild this domain's ToR expansion (adds only
            // in-domain bits — `npd` is a multiple of `p`) and diff it
            // against the old fully-expanded set. Only segments the
            // expansion delta touches lose their aligned variant.
            let mut expanded = FaultSet::new();
            for node in faults.iter_range(lo, hi) {
                expanded.add(node);
                self.expand_tor(&mut expanded, node);
            }
            for node in expanded.iter_range(lo, hi) {
                if !old_expanded.is_faulty(node) {
                    mark(&mut aligned_dirty, domain, node);
                }
            }
            for node in old_expanded.iter_range(lo, hi) {
                if !expanded.is_faulty(node) {
                    mark(&mut aligned_dirty, domain, node);
                }
            }
            for eff in effective.iter_mut().skip(domain + 1) {
                eff.splice_range(&expanded, lo, hi);
            }
        }

        // Faults past the last aggregation domain are never ToR-expanded and
        // own no segment: splice them raw into every effective set.
        let tail = n_domains * npd;
        if !faults.range_eq(&old.fingerprint, tail, usize::MAX) {
            for eff in effective.iter_mut() {
                eff.splice_range(faults, tail, usize::MAX);
            }
        }

        let last = effective.len() - 1;
        let mut segments = Vec::with_capacity(old.segments.len());
        for (seg, cache) in old.segments.iter().enumerate() {
            let (raw_hit, aligned_hit) = (raw_dirty[seg], aligned_dirty[seg]);
            if !raw_hit && !aligned_hit {
                segments.push(Arc::clone(cache));
                stats.segments_reused += 1;
                continue;
            }
            stats.segments_reorchestrated += 1;
            let nodes = self
                .deployment
                .subline_segment(seg % p, seg / p, tors_per_domain)
                .expect("segment was defined when the old scratch was built");
            let raw = if raw_hit {
                orchestrate_dcn_free(&nodes, request.k, &effective[0], request.nodes_per_group)
            } else {
                cache.raw.clone()
            };
            let aligned = if aligned_hit {
                orchestrate_dcn_free(&nodes, request.k, &effective[last], request.nodes_per_group)
            } else {
                cache.aligned.clone()
            };
            segments.push(Arc::new(SegmentCache { raw, aligned }));
        }

        let scratch = SearchScratch {
            order: Arc::clone(&old.order),
            owner: Arc::clone(&old.owner),
            segments,
            effective,
            fingerprint: faults.clone(),
        };
        (scratch, stats)
    }

    /// [`placement_with_constraints`](Self::placement_with_constraints)
    /// against a prebuilt [`SearchScratch`]: constrained segments copy their
    /// memoized placements, the residual pass streams the cached deployment
    /// order through the linear-scan kernel, and no fault set is cloned.
    /// Bit-identical to the uncached path (pinned by the memoization
    /// invariance test).
    pub(crate) fn placement_with_constraints_cached(
        &self,
        request: &OrchestrationRequest,
        scratch: &SearchScratch,
        n_constraints: usize,
    ) -> PlacementScheme {
        let p = self.deployment.sublines();
        let n_segments = self.segment_constraints();
        let constrained = n_constraints.min(n_segments).min(scratch.segments.len());
        let aligned_domains = n_constraints
            .saturating_sub(n_segments)
            .min(scratch.effective.len() - 1);
        let effective = &scratch.effective[aligned_domains];

        let mut scheme = PlacementScheme::new();
        for (seg, cache) in scratch.segments.iter().enumerate().take(constrained) {
            let placed = if seg / p < aligned_domains {
                &cache.aligned
            } else {
                &cache.raw
            };
            scheme.groups.extend_from_slice(&placed.groups);
        }

        let mut cutter = GroupCutter::new(request.nodes_per_group);
        scan_khop_runs(
            scratch
                .order
                .iter()
                .copied()
                .filter(|n| scratch.owner[n.index()] >= constrained),
            request.k,
            |n| effective.is_faulty(*n),
            &mut cutter,
        );
        scheme.extend(cutter.scheme);

        self.assign_dp_ranks(&mut scheme);
        scheme
    }

    /// `Orchestration-Fat-Tree` (Algorithms 1 and 5): search the number of
    /// constraints, keeping as many as possible while still satisfying the
    /// job scale. Returns the placement truncated to the job's group count, or
    /// an error if even the fully relaxed placement cannot satisfy the job.
    ///
    /// Equivalent to [`orchestrate_par`](Self::orchestrate_par) with one
    /// thread (and guaranteed to return the same placement).
    pub fn orchestrate(
        &self,
        request: &OrchestrationRequest,
        faults: &FaultSet,
    ) -> Result<PlacementScheme> {
        self.orchestrate_par(request, faults, 1)
    }

    /// [`orchestrate`](Self::orchestrate) with a parallel constraint search.
    ///
    /// The paper's binary search probes one constraint count per round; this
    /// implementation is a *multisection* search that probes
    /// [`SEARCH_PROBES`](Self::SEARCH_PROBES) evenly spaced constraint counts
    /// per round and fans the (independent, expensive) placement evaluations
    /// out over up to `threads` scoped threads. The probe ladder is fixed —
    /// `threads` only changes how the probes are *evaluated*, never which
    /// probes are chosen — so the resulting placement is identical for every
    /// thread count, and with one thread the probes are evaluated lazily from
    /// the most constrained end. Keeping the ladder identical across thread
    /// counts is a deliberate trade-off: a `threads == 1` fallback to plain
    /// bisection would be cheaper in the worst case (one evaluation per
    /// halving instead of up to [`SEARCH_PROBES`](Self::SEARCH_PROBES) per
    /// third-ing) but could return a different placement wherever feasibility
    /// is not perfectly monotone in the constraint count, breaking the
    /// harness-wide thread-count-invariance guarantee.
    pub fn orchestrate_par(
        &self,
        request: &OrchestrationRequest,
        faults: &FaultSet,
        threads: usize,
    ) -> Result<PlacementScheme> {
        request.validate()?;
        // Everything probe-invariant is computed once: the deployment order,
        // the segment-ownership mask, the ToR-expanded fault set per
        // aligned-domain count, and both placement variants of every segment.
        // Each probe then only assembles memoized segments and scans its
        // residual line.
        let scratch = self.search_scratch(request, faults);
        self.orchestrate_with_scratch(request, &scratch, threads).0
    }

    /// The constraint search of [`orchestrate_par`](Self::orchestrate_par)
    /// against a prebuilt [`SearchScratch`], so callers answering many
    /// requests against one fault set (the placement service, the max-job
    /// search) can amortize the scratch across searches. The scratch depends
    /// only on `(k, nodes_per_group, faults)` — never on `job_nodes` — so one
    /// scratch serves every job size of a `(k, nodes_per_group)` key.
    ///
    /// The caller must have validated `request` and built `scratch` for the
    /// same `k` / `nodes_per_group`. Returns the search outcome plus the
    /// number of probe placements evaluated (the search's dominant cost; with
    /// `threads == 1` the lazy evaluation makes this count exact, with more
    /// threads every probe of a round is evaluated eagerly).
    pub(crate) fn orchestrate_with_scratch(
        &self,
        request: &OrchestrationRequest,
        scratch: &SearchScratch,
        threads: usize,
    ) -> (Result<PlacementScheme>, usize) {
        let job_groups = request.job_nodes.div_ceil(request.nodes_per_group);
        let needed_nodes = job_groups * request.nodes_per_group;
        let feasible = |placement: &PlacementScheme| placement.nodes_placed() >= needed_nodes;
        let mut evaluated = 0usize;

        let mut low = 0usize;
        let mut high = self.segment_constraints() + self.alignment_constraints();
        let mut best: Option<PlacementScheme> = None;
        while low <= high {
            let probes = Self::probe_ladder(low, high);
            // Find the most constrained feasible probe and the least
            // constrained infeasible probe directly above it.
            let hit = if threads > 1 {
                evaluated += probes.len();
                let placements = hbd_types::par::par_map(threads, &probes, |_, &n| {
                    self.placement_with_constraints_cached(request, scratch, n)
                });
                probes
                    .iter()
                    .zip(placements)
                    .rev()
                    .find(|(_, placement)| feasible(placement))
                    .map(|(&n, placement)| (n, placement))
            } else {
                probes.iter().rev().find_map(|&n| {
                    evaluated += 1;
                    let placement = self.placement_with_constraints_cached(request, scratch, n);
                    feasible(&placement).then_some((n, placement))
                })
            };
            match hit {
                Some((n, placement)) => {
                    // Everything above `n` up to the next probe is still open;
                    // everything from the next probe on is ruled out.
                    if let Some(&next) = probes.iter().find(|&&p| p > n) {
                        high = next - 1;
                    }
                    best = Some(placement);
                    low = n + 1;
                }
                None => {
                    // The least constrained probe (== `low`) is infeasible.
                    if low == 0 {
                        break;
                    }
                    high = low - 1;
                }
            }
        }

        let outcome = best
            .ok_or_else(|| {
                HbdError::infeasible(format!(
                    "job needs {needed_nodes} nodes but the cluster cannot provide them under the current fault pattern"
                ))
            })
            .map(|mut placement| {
                placement.truncate(job_groups);
                placement
            });
        (outcome, evaluated)
    }

    /// Probes per multisection round of the constraint / job-size searches.
    pub const SEARCH_PROBES: usize = 4;

    /// Evenly spaced probe points covering `[low, high]`, endpoints included,
    /// at most [`SEARCH_PROBES`](Self::SEARCH_PROBES) of them, strictly
    /// increasing.
    pub(crate) fn probe_ladder(low: usize, high: usize) -> Vec<usize> {
        debug_assert!(low <= high);
        let span = high - low + 1;
        let count = Self::SEARCH_PROBES.min(span);
        if count <= 1 {
            return vec![low];
        }
        let mut probes: Vec<usize> = (0..count)
            .map(|i| low + (high - low) * i / (count - 1))
            .collect();
        probes.dedup();
        probes
    }

    /// Orders the groups for DP-rank assignment so that groups whose rank-0
    /// nodes share a ToR (and hence, under alignment, share every rank's ToR)
    /// become DP neighbours — the "align ranks within each ToR" objective.
    fn assign_dp_ranks(&self, scheme: &mut PlacementScheme) {
        scheme.groups.sort_by_key(|group| {
            let head = group.nodes.first().copied().unwrap_or(NodeId(0));
            let tor = head.index() / self.deployment.sublines();
            let domain = head.index() / self.fat_tree.nodes_per_aggregation_domain();
            (domain, tor, head.index())
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traffic::{cross_tor_rate, TrafficModel};
    use proptest::prelude::*;
    use std::collections::BTreeSet;

    /// The patch path's oracle: a patched scratch must be indistinguishable,
    /// field for field, from a cold [`FatTreeOrchestrator::search_scratch`]
    /// rebuild against the same fault set.
    fn assert_matches_cold_rebuild(
        orch: &FatTreeOrchestrator,
        req: &OrchestrationRequest,
        patched: &SearchScratch,
        faults: &FaultSet,
    ) -> SearchScratch {
        let cold = orch.search_scratch(req, faults);
        assert_eq!(*patched.order, *cold.order);
        assert_eq!(*patched.owner, *cold.owner);
        assert_eq!(patched.effective, cold.effective);
        assert_eq!(patched.fingerprint, cold.fingerprint);
        assert_eq!(patched.segments.len(), cold.segments.len());
        for (seg, (p, c)) in patched.segments.iter().zip(&cold.segments).enumerate() {
            assert_eq!(p.raw, c.raw, "segment {seg} raw placement");
            assert_eq!(p.aligned, c.aligned, "segment {seg} aligned placement");
        }
        cold
    }

    fn orchestrator() -> FatTreeOrchestrator {
        // 512 nodes, 16 per ToR, 8 ToRs per aggregation domain (so one sub-line
        // segment can host a full 8-node TP group, as in the paper's 8k-GPU
        // setup).
        FatTreeOrchestrator::new(FatTree::new(512, 16, 8).unwrap()).unwrap()
    }

    fn request(job_nodes: usize) -> OrchestrationRequest {
        OrchestrationRequest {
            job_nodes,
            nodes_per_group: 8,
            k: 2,
        }
    }

    #[test]
    fn constraint_pools_match_layout() {
        let orch = orchestrator();
        assert_eq!(orch.alignment_constraints(), 4);
        assert_eq!(orch.segment_constraints(), 4 * 16);
    }

    #[test]
    fn healthy_cluster_satisfies_large_jobs_with_full_constraints() {
        let orch = orchestrator();
        let placement = orch.orchestrate(&request(384), &FaultSet::new()).unwrap();
        assert!(placement.nodes_placed() >= 384);
        assert!(placement.validate(8, &BTreeSet::new()).is_ok());
    }

    #[test]
    fn orchestrated_placement_has_near_zero_cross_tor_traffic() {
        let orch = orchestrator();
        let faults = FaultSet::from_nodes((0..10).map(|i| NodeId(i * 37)));
        let placement = orch.orchestrate(&request(400), &faults).unwrap();
        let rate = cross_tor_rate(&placement, orch.fat_tree(), &TrafficModel::paper_tp32());
        assert!(
            rate < 0.02,
            "optimized cross-ToR rate should be near zero, got {rate}"
        );
    }

    #[test]
    fn relaxing_constraints_increases_capacity() {
        let orch = orchestrator();
        // Concentrated faults in domain 0 make constrained placement expensive.
        let faults = FaultSet::from_nodes((0..32).map(NodeId));
        let req = request(400);
        let strict = orch.placement_with_constraints(
            &req,
            &faults,
            orch.segment_constraints() + orch.alignment_constraints(),
        );
        let relaxed = orch.placement_with_constraints(&req, &faults, 0);
        assert!(relaxed.nodes_placed() >= strict.nodes_placed());
    }

    #[test]
    fn oversized_jobs_are_rejected() {
        let orch = orchestrator();
        assert!(orch.orchestrate(&request(1000), &FaultSet::new()).is_err());
        // Invalid request parameters are rejected too.
        let bad = OrchestrationRequest {
            job_nodes: 0,
            nodes_per_group: 8,
            k: 2,
        };
        assert!(orch.orchestrate(&bad, &FaultSet::new()).is_err());
    }

    #[test]
    fn parallel_search_matches_sequential() {
        let orch = orchestrator();
        let faults = FaultSet::from_nodes((0..24).map(|i| NodeId(i * 17)));
        let req = request(400);
        let seq = orch.orchestrate(&req, &faults).unwrap();
        let par = orch.orchestrate_par(&req, &faults, 4).unwrap();
        assert_eq!(seq, par);
        let wide = orch.orchestrate_par(&req, &faults, 16).unwrap();
        assert_eq!(seq, wide);
    }

    #[test]
    fn probe_ladder_is_sane() {
        assert_eq!(FatTreeOrchestrator::probe_ladder(3, 3), vec![3]);
        assert_eq!(FatTreeOrchestrator::probe_ladder(0, 2), vec![0, 1, 2]);
        let ladder = FatTreeOrchestrator::probe_ladder(0, 68);
        assert_eq!(ladder.first(), Some(&0));
        assert_eq!(ladder.last(), Some(&68));
        assert!(ladder.windows(2).all(|w| w[0] < w[1]));
        assert!(ladder.len() <= FatTreeOrchestrator::SEARCH_PROBES);
    }

    #[test]
    fn cached_search_matches_uncached_probes_for_any_thread_count() {
        // Memoization invariance: every probe of the constraint ladder places
        // identically with and without the per-search cache, and the full
        // search result is identical for 1 / 4 / 16 threads.
        let orch = orchestrator();
        let faults = FaultSet::from_nodes((0..30).map(|i| NodeId(i * 13)));
        let req = request(360);
        let scratch = orch.search_scratch(&req, &faults);
        let total = orch.segment_constraints() + orch.alignment_constraints();
        for n in 0..=total {
            let cached = orch.placement_with_constraints_cached(&req, &scratch, n);
            let uncached = orch.placement_with_constraints(&req, &faults, n);
            assert_eq!(cached, uncached, "constraint count {n}");
        }
        let seq = orch.orchestrate_par(&req, &faults, 1).unwrap();
        for threads in [4usize, 16] {
            assert_eq!(
                seq,
                orch.orchestrate_par(&req, &faults, threads).unwrap(),
                "threads {threads}"
            );
        }
    }

    #[test]
    fn one_scratch_serves_every_job_size_with_unchanged_faults() {
        // The scratch depends only on (k, nodes_per_group, faults): reusing
        // one scratch across consecutive searches with different job sizes
        // must match a fresh scratch per search, including the infeasible
        // outcome past the cluster's capacity.
        let orch = orchestrator();
        let faults = FaultSet::from_nodes((0..20).map(|i| NodeId(i * 19)));
        let scratch = orch.search_scratch(&request(1), &faults);
        for job_nodes in [8usize, 64, 200, 360, 480, 1000] {
            let req = request(job_nodes);
            let (reused, probes) = orch.orchestrate_with_scratch(&req, &scratch, 1);
            assert!(probes > 0, "job_nodes {job_nodes}");
            assert_eq!(
                reused,
                orch.orchestrate_par(&req, &faults, 1),
                "job_nodes {job_nodes}"
            );
        }
    }

    #[test]
    fn empty_delta_patch_reuses_every_segment() {
        let orch = orchestrator();
        let req = request(360);
        let faults = FaultSet::from_nodes((0..20).map(|i| NodeId(i * 23)));
        let scratch = orch.search_scratch(&req, &faults);
        let (patched, stats) = orch.patch_scratch(&req, &scratch, &faults);
        assert_eq!(stats.domains_patched, 0);
        assert_eq!(stats.segments_reorchestrated, 0);
        assert_eq!(stats.segments_reused, scratch.segments.len());
        assert_matches_cold_rebuild(&orch, &req, &patched, &faults);
    }

    #[test]
    fn full_delta_patch_matches_cold_rebuild_exactly() {
        // A delta flipping a node in every sub-line of every domain dirties
        // every segment; the patched scratch must still equal a cold rebuild.
        let orch = orchestrator();
        let req = request(360);
        let old = FaultSet::from_nodes([NodeId(5)]);
        let scratch = orch.search_scratch(&req, &old);
        let p = orch.deployment().sublines();
        let new = FaultSet::from_nodes((0..orch.fat_tree().nodes() / p).map(|t| NodeId(t * p)));
        let (patched, stats) = orch.patch_scratch(&req, &scratch, &new);
        assert_eq!(stats.domains_patched, orch.alignment_constraints());
        assert_eq!(stats.segments_reorchestrated, scratch.segments.len());
        assert_eq!(stats.segments_reused, 0);
        assert_matches_cold_rebuild(&orch, &req, &patched, &new);
    }

    #[test]
    fn small_delta_patch_reorchestrates_only_touched_sublines() {
        let orch = orchestrator();
        let req = request(360);
        let faults = FaultSet::from_nodes([NodeId(40), NodeId(300)]);
        let scratch = orch.search_scratch(&req, &faults);
        // One added fault: it dirties its own sub-line's raw variant and, via
        // the ToR expansion, the aligned variants of its rack peers' sub-lines
        // — never a segment of another domain.
        let mut bumped = faults.clone();
        bumped.add(NodeId(129));
        let (patched, stats) = orch.patch_scratch(&req, &scratch, &bumped);
        assert_eq!(stats.domains_patched, 1);
        assert!(stats.segments_reorchestrated <= orch.deployment().sublines());
        assert_eq!(
            stats.segments_reused + stats.segments_reorchestrated,
            scratch.segments.len()
        );
        assert_matches_cold_rebuild(&orch, &req, &patched, &bumped);
    }

    #[test]
    fn occupy_release_round_trip_returns_to_the_prior_fingerprint() {
        let orch = orchestrator();
        let req = request(360);
        let base = FaultSet::from_nodes((0..12).map(|i| NodeId(i * 31)));
        let origin = orch.search_scratch(&req, &base);
        // Occupy a handful of nodes, then release them: the fingerprint is
        // back to `base` and the twice-patched scratch must equal the origin.
        let mut occupied = base.clone();
        for id in [64usize, 65, 200, 450] {
            occupied.add(NodeId(id));
        }
        let (mid, _) = orch.patch_scratch(&req, &origin, &occupied);
        assert_matches_cold_rebuild(&orch, &req, &mid, &occupied);
        let (back, _) = orch.patch_scratch(&req, &mid, &base);
        assert_eq!(back.fingerprint, origin.fingerprint);
        assert_matches_cold_rebuild(&orch, &req, &back, &base);
    }

    #[test]
    fn tail_faults_beyond_the_domains_are_patched_raw() {
        // Ids past the last aggregation domain (out-of-cluster trace ids) sit
        // in the unexpanded tail of every effective set; a delta there must
        // splice raw bits and reuse every segment.
        let orch = orchestrator();
        let req = request(360);
        let faults = FaultSet::from_nodes([NodeId(3), NodeId(550)]);
        let scratch = orch.search_scratch(&req, &faults);
        let mut moved = faults.clone();
        moved.remove(NodeId(550));
        moved.add(NodeId(600));
        let (patched, stats) = orch.patch_scratch(&req, &scratch, &moved);
        assert_eq!(stats.domains_patched, 0);
        assert_eq!(stats.segments_reorchestrated, 0);
        assert_matches_cold_rebuild(&orch, &req, &patched, &moved);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The incremental-publish pin: chained patches over random delta
        /// sequences stay bit-identical to cold rebuilds — scratch fields,
        /// search answers and probe counts alike, for 1 and 4 threads.
        #[test]
        fn chained_patches_match_cold_rebuilds_over_random_deltas(
            initial in proptest::collection::vec(0usize..600, 0..40),
            deltas in proptest::collection::vec(
                proptest::collection::vec((0usize..600, 0usize..2), 1..12),
                1..5,
            ),
        ) {
            let orch = orchestrator();
            let req = request(360);
            let mut live = FaultSet::from_nodes(initial.into_iter().map(NodeId));
            let mut scratch = orch.search_scratch(&req, &live);
            for delta in deltas {
                for (id, flag) in delta {
                    if flag == 1 {
                        live.add(NodeId(id));
                    } else {
                        live.remove(NodeId(id));
                    }
                }
                let (patched, stats) = orch.patch_scratch(&req, &scratch, &live);
                prop_assert_eq!(
                    stats.segments_reused + stats.segments_reorchestrated,
                    scratch.segments.len()
                );
                let cold = assert_matches_cold_rebuild(&orch, &req, &patched, &live);
                for threads in [1usize, 4] {
                    let (fast, fast_probes) =
                        orch.orchestrate_with_scratch(&req, &patched, threads);
                    let (slow, slow_probes) =
                        orch.orchestrate_with_scratch(&req, &cold, threads);
                    prop_assert_eq!(fast, slow, "threads {}", threads);
                    prop_assert_eq!(fast_probes, slow_probes, "threads {}", threads);
                }
                scratch = patched;
            }
        }
    }

    #[test]
    fn placement_never_uses_faulty_nodes() {
        let orch = orchestrator();
        let faults = FaultSet::from_nodes((0..40).map(|i| NodeId(i * 11)));
        let placement = orch.orchestrate(&request(300), &faults).unwrap();
        let faulty: BTreeSet<NodeId> = faults.iter().collect();
        assert!(placement.validate(8, &faulty).is_ok());
    }

    #[test]
    fn groups_respect_the_requested_size() {
        let orch = orchestrator();
        let placement = orch.orchestrate(&request(128), &FaultSet::new()).unwrap();
        assert!(placement.groups.iter().all(|g| g.len() == 8));
        assert_eq!(placement.len(), 16);
    }
}
