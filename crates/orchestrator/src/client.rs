//! The retrying client in front of the admission-controlled service: seeded
//! exponential backoff, a bounded retry budget, a circuit breaker around the
//! snapshot store, and a degraded mode that answers read-only queries from
//! the last healthy epoch while the breaker is open.
//!
//! [`RetryingClient::run_session`] is a deterministic discrete-event driver:
//! query arrivals, store publishes (fault storms enter here as
//! [`SnapshotDelta`]s at modeled instants) and retry wake-ups all live on one
//! modeled-time event queue. A shed query is retried no earlier than the
//! service's `retry_after` hint *and* no earlier than the
//! [`BackoffSchedule`]'s capped exponential delay — whose jitter is a pure
//! hash of `(seed, query id, attempt)`, so retry timelines are bit-stable in
//! the seed and invariant in the thread count (the modeled-time backoff
//! determinism argument of ARCHITECTURE.md).
//!
//! Consecutive sheds trip the [`CircuitBreaker`]; while it is open the client
//! stops offering work and instead answers `MaxJob` / `WhatIf` queries from
//! the snapshot it pinned at the last successful answer, labelling each such
//! [`ClientOutcome::Degraded`] with how many epochs stale that snapshot is.
//! `Place` queries cannot be served stale (they would hand out occupied
//! nodes), so they wait for the breaker's re-probe instant and spend a retry
//! attempt. The half-open re-probe protocol is machine-checked via the
//! breaker's monotone transition log, which the session report carries.

use crate::admission::{AdmissionConfig, AdmissionController, AdmissionStats, Disposition, Ticket};
use crate::search::max_orchestratable_job;
use crate::service::{
    ClusterSnapshot, ModeledLatency, PlacementAnswer, PlacementQuery, PlacementService,
    SnapshotDelta,
};
use hbd_types::epoch::Versioned;
use hbd_types::robust::{BackoffSchedule, BreakerConfig, BreakerState, CircuitBreaker};
use hbd_types::{EventQueue, Seconds};
use std::collections::BTreeMap;
use std::sync::Arc;

/// How a client retries shed queries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// The deterministic backoff schedule (delays keyed by query id).
    pub backoff: BackoffSchedule,
    /// Total attempts per query, initial submit included (>= 1; 0 is
    /// treated as 1).
    pub max_attempts: u32,
}

/// Full configuration of a [`RetryingClient`].
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// The admission queue the client submits into.
    pub admission: AdmissionConfig,
    /// Retry budget and backoff.
    pub retry: RetryPolicy,
    /// Circuit-breaker thresholds around the service.
    pub breaker: BreakerConfig,
    /// Per-attempt deadline budget, relative to the attempt's submit instant
    /// (modeled µs); `f64::INFINITY` for none.
    pub deadline_us: f64,
}

/// One query of a client session.
#[derive(Debug, Clone)]
pub struct ClientQuery {
    /// Session-unique id (also the backoff jitter key).
    pub id: u64,
    /// The query.
    pub query: PlacementQuery,
    /// First-submit instant (modeled µs).
    pub arrival_us: f64,
    /// Priority class (0 = most important).
    pub class: u8,
}

/// A store publish scheduled at a modeled instant — how background churn and
/// fault storms enter a session.
#[derive(Debug, Clone)]
pub struct StorePublish {
    /// When to publish (modeled µs).
    pub at_us: f64,
    /// The delta to publish.
    pub delta: SnapshotDelta,
}

/// The terminal outcome of one client query.
#[derive(Debug, Clone)]
pub enum ClientOutcome {
    /// Answered by the service within deadline.
    Answered {
        /// Attempts spent (>= 1).
        attempts: u32,
        /// Modeled completion instant (µs).
        completed_us: f64,
        /// Completion minus the query's *original* arrival (µs) — retries
        /// included, so this is the end-to-end latency a caller saw.
        sojourn_us: f64,
        /// The service's answer.
        answer: PlacementAnswer,
    },
    /// Answered client-side from the last healthy epoch while the breaker
    /// was open. Only `MaxJob` / `WhatIf` queries degrade.
    Degraded {
        /// Attempts spent when the degraded answer was produced.
        attempts: u32,
        /// When it was produced (µs).
        at_us: f64,
        /// How many epochs behind the store the answering snapshot was.
        staleness_epochs: u64,
        /// The (possibly stale) answer.
        answer: PlacementAnswer,
    },
    /// The retry budget ran out before any answer.
    Exhausted {
        /// Attempts spent (== the budget).
        attempts: u32,
        /// When the last attempt failed (µs).
        at_us: f64,
    },
}

/// Everything a [`RetryingClient::run_session`] run observed.
#[derive(Debug, Clone)]
pub struct ClientReport {
    /// Terminal outcome per query id (every submitted query has exactly
    /// one).
    pub outcomes: BTreeMap<u64, ClientOutcome>,
    /// Re-submits scheduled (service sheds and breaker refusals alike).
    pub retries: u64,
    /// The breaker's full transition log (times in modeled seconds,
    /// monotone).
    pub breaker_transitions: Vec<(Seconds, BreakerState)>,
    /// The admission controller's final counters.
    pub admission: AdmissionStats,
    /// Per recovery mark: modeled µs from the mark until the system was
    /// healthy again (breaker closed, queue empty, server idle), or `None`
    /// if it never recovered within the session.
    pub recovery_us: Vec<Option<f64>>,
}

impl ClientReport {
    /// Counts of `(answered, degraded, exhausted)` outcomes.
    pub fn outcome_counts(&self) -> (usize, usize, usize) {
        let mut counts = (0, 0, 0);
        for outcome in self.outcomes.values() {
            match outcome {
                ClientOutcome::Answered { .. } => counts.0 += 1,
                ClientOutcome::Degraded { .. } => counts.1 += 1,
                ClientOutcome::Exhausted { .. } => counts.2 += 1,
            }
        }
        counts
    }
}

/// One event of the session's modeled-time loop. Times live in the payload
/// (µs); the queue key is the same instant in seconds, used only for
/// ordering.
#[derive(Debug, Clone)]
enum SessionEvent {
    /// (Re-)submit query `idx`, spending attempt number `attempt` (0-based).
    Submit {
        idx: usize,
        attempt: u32,
        at_us: f64,
    },
    /// Apply publish `idx` to the store.
    Publish { idx: usize, at_us: f64 },
    /// Start watching for recovery on mark `idx`.
    Mark { idx: usize, at_us: f64 },
}

impl SessionEvent {
    fn at_us(&self) -> f64 {
        match self {
            SessionEvent::Submit { at_us, .. }
            | SessionEvent::Publish { at_us, .. }
            | SessionEvent::Mark { at_us, .. } => *at_us,
        }
    }
}

/// The retrying, breaker-guarded client wrapper. Construction is
/// config-only; all state lives inside one [`run_session`](Self::run_session)
/// call, which makes sessions trivially repeatable.
#[derive(Debug, Clone)]
pub struct RetryingClient {
    config: ClientConfig,
}

/// Per-query session state.
struct QueryState {
    attempts: u32,
    outcome: Option<ClientOutcome>,
}

/// The mutable state of one running session, shared between the event
/// handlers.
struct Session<'a> {
    service: &'a PlacementService,
    config: &'a ClientConfig,
    controller: AdmissionController,
    breaker: CircuitBreaker,
    healthy: Arc<Versioned<ClusterSnapshot>>,
    events: EventQueue<SessionEvent>,
    states: Vec<QueryState>,
    /// Query id → index into `states` / the query slice.
    index_of: BTreeMap<u64, usize>,
    retries: u64,
    /// `(mark index, mark instant)` still waiting for recovery.
    awaiting_recovery: Vec<(usize, f64)>,
    recovery_us: Vec<Option<f64>>,
}

impl RetryingClient {
    /// A client with the given configuration.
    pub fn new(config: ClientConfig) -> Self {
        RetryingClient { config }
    }

    /// Runs one deterministic session: `queries` arrive at their instants,
    /// `publishes` mutate the store at theirs, and each `marks` instant
    /// starts a recovery stopwatch (used by the fault-storm experiment to
    /// measure time-to-healthy per storm). Query ids must be unique.
    /// Deterministic in the inputs; invariant in `threads`.
    pub fn run_session(
        &self,
        service: &PlacementService,
        model: ModeledLatency,
        queries: &[ClientQuery],
        publishes: &[StorePublish],
        marks: &[f64],
        threads: usize,
    ) -> ClientReport {
        let mut session = Session {
            service,
            config: &self.config,
            controller: AdmissionController::new(self.config.admission, model),
            breaker: CircuitBreaker::new(self.config.breaker),
            healthy: service.store().load(),
            events: EventQueue::new(),
            states: Vec::with_capacity(queries.len()),
            index_of: BTreeMap::new(),
            retries: 0,
            awaiting_recovery: Vec::new(),
            recovery_us: vec![None; marks.len()],
        };
        for (idx, query) in queries.iter().enumerate() {
            session.states.push(QueryState {
                attempts: 0,
                outcome: None,
            });
            let previous = session.index_of.insert(query.id, idx);
            assert!(previous.is_none(), "query ids must be unique");
            session.schedule(SessionEvent::Submit {
                idx,
                attempt: 0,
                at_us: query.arrival_us,
            });
        }
        for (idx, publish) in publishes.iter().enumerate() {
            session.schedule(SessionEvent::Publish {
                idx,
                at_us: publish.at_us,
            });
        }
        for (idx, &at_us) in marks.iter().enumerate() {
            session.schedule(SessionEvent::Mark { idx, at_us });
        }

        // The main loop: pop events in modeled-time order; when the event
        // queue drains but tickets are still queued, flush the admission
        // queue (whose sheds may schedule further retries, re-filling the
        // event queue).
        let mut dispositions: Vec<Disposition> = Vec::new();
        loop {
            if let Some((_, event)) = session.events.pop() {
                let now_us = event.at_us();
                session
                    .controller
                    .run_until(service, now_us, threads, &mut dispositions);
                session.resolve(queries, &mut dispositions, now_us);
                session.handle(queries, publishes, event);
                session.check_recovery(now_us);
            } else if session.controller.backlog() > 0 {
                session
                    .controller
                    .drain(service, threads, &mut dispositions);
                let now_us = session.controller.free_at_us();
                session.resolve(queries, &mut dispositions, now_us);
                session.check_recovery(now_us);
            } else {
                break;
            }
        }

        ClientReport {
            outcomes: queries
                .iter()
                .zip(&mut session.states)
                .map(|(q, s)| {
                    let outcome = s.outcome.take().expect("every query reached an outcome");
                    (q.id, outcome)
                })
                .collect(),
            retries: session.retries,
            breaker_transitions: session.breaker.transitions().to_vec(),
            admission: session.controller.stats(),
            recovery_us: session.recovery_us,
        }
    }
}

/// Converts a modeled-µs instant to the breaker's seconds domain.
fn sec(us: f64) -> Seconds {
    Seconds(us / 1_000_000.0)
}

impl Session<'_> {
    fn schedule(&mut self, event: SessionEvent) {
        self.events.push(sec(event.at_us()), event);
    }

    fn handle(&mut self, queries: &[ClientQuery], publishes: &[StorePublish], event: SessionEvent) {
        match event {
            SessionEvent::Publish { idx, .. } => {
                self.service.store().publish_delta(&publishes[idx].delta);
            }
            SessionEvent::Mark { idx, at_us } => {
                self.awaiting_recovery.push((idx, at_us));
            }
            SessionEvent::Submit {
                idx,
                attempt,
                at_us,
            } => self.submit(queries, idx, attempt, at_us),
        }
    }

    fn submit(&mut self, queries: &[ClientQuery], idx: usize, attempt: u32, now_us: f64) {
        let query = &queries[idx];
        let budget = self.config.retry.max_attempts.max(1);
        self.states[idx].attempts = attempt + 1;
        if self.breaker.allow(sec(now_us)) {
            let deadline_us = now_us + self.config.deadline_us;
            let mut out = Vec::new();
            self.controller.offer(
                Ticket {
                    id: query.id,
                    query: query.query.clone(),
                    arrival_us: now_us,
                    deadline_us,
                    class: query.class,
                },
                &mut out,
            );
            self.resolve(queries, &mut out, now_us);
            return;
        }
        // Breaker open (or half-open with the probe already in flight):
        // degrade read-only queries from the last healthy epoch, spend an
        // attempt waiting for the re-probe otherwise.
        if let Some(answer) = degraded_answer(&self.healthy, &query.query) {
            let staleness_epochs = self.service.store().epoch() - self.healthy.epoch;
            self.states[idx].outcome = Some(ClientOutcome::Degraded {
                attempts: attempt + 1,
                at_us: now_us,
                staleness_epochs,
                answer,
            });
            return;
        }
        if attempt + 1 < budget {
            let reopen_us = self.breaker.retry_at(sec(now_us)).value() * 1_000_000.0;
            let backoff_us = self
                .config
                .retry
                .backoff
                .delay(attempt, queries[idx].id)
                .value()
                * 1_000_000.0;
            // A strictly positive floor keeps the loop live even with a
            // degenerate zero-delay schedule.
            let wake = now_us + (reopen_us - now_us).max(backoff_us).max(1.0);
            self.retries += 1;
            self.schedule(SessionEvent::Submit {
                idx,
                attempt: attempt + 1,
                at_us: wake,
            });
        } else {
            self.states[idx].outcome = Some(ClientOutcome::Exhausted {
                attempts: attempt + 1,
                at_us: now_us,
            });
        }
    }

    /// Applies a batch of admission dispositions: successes feed the breaker
    /// and refresh the healthy snapshot, sheds feed the breaker and schedule
    /// backoff retries (or exhaust the budget). `learned_us` is the modeled
    /// instant the client processes the batch; a retry can never be
    /// scheduled before it.
    fn resolve(
        &mut self,
        queries: &[ClientQuery],
        dispositions: &mut Vec<Disposition>,
        learned_us: f64,
    ) {
        for disposition in dispositions.drain(..) {
            let idx = self.index_of[&disposition.id()];
            match disposition {
                Disposition::Answered(answered) => {
                    self.breaker.on_success(sec(answered.completed_us));
                    // The store answered: whatever it holds now is the new
                    // healthy reference for degraded mode.
                    self.healthy = self.service.store().load();
                    self.states[idx].outcome = Some(ClientOutcome::Answered {
                        attempts: self.states[idx].attempts,
                        completed_us: answered.completed_us,
                        sojourn_us: answered.completed_us - queries[idx].arrival_us,
                        answer: answered.answer,
                    });
                }
                Disposition::Shed(shed) => {
                    self.breaker.on_failure(sec(shed.at_us));
                    let attempts = self.states[idx].attempts;
                    let budget = self.config.retry.max_attempts.max(1);
                    if attempts < budget {
                        let backoff_us = self
                            .config
                            .retry
                            .backoff
                            .delay(attempts - 1, queries[idx].id)
                            .value()
                            * 1_000_000.0;
                        let delay = shed.retry_after_us.max(backoff_us).max(1.0);
                        let wake = (shed.at_us + delay).max(learned_us);
                        self.retries += 1;
                        self.schedule(SessionEvent::Submit {
                            idx,
                            attempt: attempts,
                            at_us: wake,
                        });
                    } else {
                        self.states[idx].outcome = Some(ClientOutcome::Exhausted {
                            attempts,
                            at_us: shed.at_us,
                        });
                    }
                }
            }
        }
    }

    /// Resolves pending recovery marks: the system is "recovered" when the
    /// breaker is closed, the admission queue is empty and the modeled
    /// server is idle.
    fn check_recovery(&mut self, now_us: f64) {
        if self.awaiting_recovery.is_empty() {
            return;
        }
        let healthy = self.breaker.state() == BreakerState::Closed
            && self.controller.backlog() == 0
            && self.controller.free_at_us() <= now_us;
        if healthy {
            for (idx, marked_us) in self.awaiting_recovery.drain(..) {
                self.recovery_us[idx] = Some(now_us - marked_us);
            }
        }
    }
}

/// The degraded-mode answer for a query against the pinned healthy snapshot:
/// `MaxJob` and `WhatIf` are pure reads and answer (staleness-labelled);
/// `Place` must not hand out nodes based on stale occupancy and returns
/// `None`.
fn degraded_answer(
    snapshot: &Versioned<ClusterSnapshot>,
    query: &PlacementQuery,
) -> Option<PlacementAnswer> {
    let orchestrator = snapshot.value.orchestrator();
    let faults = snapshot.value.faults();
    match query {
        PlacementQuery::MaxJob { nodes_per_group, k } => Some(PlacementAnswer::MaxJob {
            job_nodes: max_orchestratable_job(orchestrator, *nodes_per_group, *k, faults, 1)
                .job_nodes,
        }),
        PlacementQuery::WhatIf {
            request,
            extra_faults,
        } => Some(PlacementAnswer::Placement(orchestrator.orchestrate_par(
            request,
            &faults.union(extra_faults),
            1,
        ))),
        PlacementQuery::Place(_) => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::admission::ShedPolicy;
    use crate::fat_tree::{FatTreeOrchestrator, OrchestrationRequest};
    use crate::service::SnapshotStore;
    use hbd_types::NodeId;
    use topology::{FatTree, FaultSet};

    fn service() -> PlacementService {
        let orch = Arc::new(FatTreeOrchestrator::new(FatTree::new(128, 16, 8).unwrap()).unwrap());
        PlacementService::new(Arc::new(SnapshotStore::new(orch, FaultSet::new())))
    }

    fn place_query(id: u64, arrival_us: f64) -> ClientQuery {
        ClientQuery {
            id,
            query: PlacementQuery::Place(OrchestrationRequest {
                job_nodes: 32,
                nodes_per_group: 8,
                k: 2,
            }),
            arrival_us,
            class: 0,
        }
    }

    fn max_job_query(id: u64, arrival_us: f64) -> ClientQuery {
        ClientQuery {
            id,
            query: PlacementQuery::MaxJob {
                nodes_per_group: 8,
                k: 2,
            },
            arrival_us,
            class: 0,
        }
    }

    fn config(
        capacity: usize,
        max_attempts: u32,
        threshold: u32,
        cooldown: Seconds,
    ) -> ClientConfig {
        ClientConfig {
            admission: AdmissionConfig {
                capacity,
                batch_cap: 1,
                policy: ShedPolicy::RejectNewest,
            },
            retry: RetryPolicy {
                backoff: BackoffSchedule {
                    base: Seconds(0.0005),
                    factor: 2.0,
                    cap: Seconds(0.01),
                    jitter: 0.0,
                    seed: 1,
                },
                max_attempts,
            },
            breaker: BreakerConfig {
                failure_threshold: threshold,
                cooldown,
            },
            deadline_us: f64::INFINITY,
        }
    }

    #[test]
    fn healthy_session_answers_everything_first_try() {
        let service = service();
        let client = RetryingClient::new(config(64, 3, 3, Seconds(0.001)));
        let queries: Vec<ClientQuery> =
            (0..4).map(|i| place_query(i, i as f64 * 1_000.0)).collect();
        let report = client.run_session(
            &service,
            ModeledLatency::for_cluster(128),
            &queries,
            &[],
            &[],
            1,
        );
        assert_eq!(report.outcome_counts(), (4, 0, 0));
        assert_eq!(report.retries, 0);
        assert!(report.breaker_transitions.is_empty());
        for outcome in report.outcomes.values() {
            let ClientOutcome::Answered {
                attempts,
                sojourn_us,
                ..
            } = outcome
            else {
                panic!("expected an answer");
            };
            assert_eq!(*attempts, 1);
            assert!(*sojourn_us > 0.0);
        }
    }

    #[test]
    fn zero_capacity_service_exhausts_the_retry_budget() {
        let service = service();
        let client = RetryingClient::new(config(0, 2, 100, Seconds(1.0)));
        let queries = vec![place_query(0, 0.0), place_query(1, 10.0)];
        let report = client.run_session(
            &service,
            ModeledLatency::for_cluster(128),
            &queries,
            &[],
            &[],
            1,
        );
        assert_eq!(report.outcome_counts(), (0, 0, 2));
        for outcome in report.outcomes.values() {
            let ClientOutcome::Exhausted { attempts, .. } = outcome else {
                panic!("expected exhaustion");
            };
            assert_eq!(*attempts, 2, "the whole budget was spent");
        }
        // One retry per query beyond the initial attempt.
        assert_eq!(report.retries, 2);
        assert_eq!(report.admission.offered, 4);
        assert_eq!(report.admission.shed_queue_full, 4);
    }

    #[test]
    fn open_breaker_degrades_reads_from_the_last_healthy_epoch() {
        let service = service();
        // Threshold 1: the very first shed trips the breaker; the long
        // cooldown keeps it open for the rest of the session.
        let client = RetryingClient::new(config(0, 1, 1, Seconds(10.0)));
        let queries = vec![place_query(0, 0.0), max_job_query(1, 10.0)];
        // A fault published between the two arrivals makes the store's
        // current epoch newer than the client's pinned healthy snapshot.
        let mut delta = SnapshotDelta::new();
        delta.faulted.add(NodeId(3));
        let publishes = vec![StorePublish { at_us: 5.0, delta }];
        let report = client.run_session(
            &service,
            ModeledLatency::for_cluster(128),
            &queries,
            &publishes,
            &[],
            1,
        );
        assert_eq!(report.outcome_counts(), (0, 1, 1));
        let ClientOutcome::Degraded {
            staleness_epochs,
            answer,
            ..
        } = &report.outcomes[&1]
        else {
            panic!("the read query must degrade while the breaker is open");
        };
        assert_eq!(*staleness_epochs, 1, "one epoch behind the store");
        // The degraded answer reflects the *healthy* (fault-free) epoch: the
        // full cluster is still placeable there.
        assert_eq!(*answer, PlacementAnswer::MaxJob { job_nodes: 128 });
        // The Place query cannot degrade and exhausted its 1-attempt budget.
        assert!(matches!(
            report.outcomes[&0],
            ClientOutcome::Exhausted { attempts: 1, .. }
        ));
    }

    #[test]
    fn breaker_reprobes_after_cooldown_and_recovers() {
        let service = service();
        // Capacity 1 with four near-simultaneous arrivals: two sheds trip
        // the breaker, the cooldown passes while the server drains, the
        // half-open probe succeeds and the session ends healthy.
        let client = RetryingClient::new(config(1, 6, 2, Seconds(0.001)));
        let queries: Vec<ClientQuery> = (0..4).map(|i| place_query(i, i as f64)).collect();
        let marks = vec![3.0];
        let report = client.run_session(
            &service,
            ModeledLatency::for_cluster(128),
            &queries,
            &[],
            &marks,
            1,
        );
        // Everything eventually answers within the generous budget.
        assert_eq!(report.outcome_counts(), (4, 0, 0));
        assert!(report.retries > 0);
        // The transition log machine-checks the re-probe protocol: it opens,
        // half-opens at (or after) the cooldown, closes on the probe answer,
        // in monotone time.
        let states: Vec<BreakerState> =
            report.breaker_transitions.iter().map(|(_, s)| *s).collect();
        assert!(states.contains(&BreakerState::Open));
        assert!(states.contains(&BreakerState::HalfOpen));
        assert_eq!(states.last(), Some(&BreakerState::Closed));
        let times: Vec<f64> = report
            .breaker_transitions
            .iter()
            .map(|(t, _)| t.value())
            .collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
        // The storm mark recovered once the breaker closed and the queue
        // drained.
        assert!(report.recovery_us[0].is_some());
        // Conservation at the admission queue: offers resolve exactly once.
        let stats = report.admission;
        assert_eq!(stats.offered, stats.answered + stats.shed());
    }
}
