//! The baseline orchestration of §6.4: "a greedy algorithm, which randomly
//! selects nodes from the cluster and uses the first permutation that meets the
//! requirements". It ignores the DCN entirely, so roughly all of its DP/CP
//! traffic ends up crossing ToRs.

use crate::scheme::{PlacementScheme, TpGroup};
use hbd_types::NodeId;
use rand::seq::SliceRandom;
use rand::Rng;
use topology::FaultSet;

/// Greedy baseline placement: shuffle the healthy nodes and cut the shuffle
/// into TP groups until the job is satisfied (or the nodes run out).
pub fn greedy_placement<R: Rng + ?Sized>(
    total_nodes: usize,
    faults: &FaultSet,
    nodes_per_group: usize,
    job_nodes: usize,
    rng: &mut R,
) -> PlacementScheme {
    assert!(nodes_per_group > 0, "TP groups need at least one node");
    let mut healthy: Vec<NodeId> = (0..total_nodes)
        .map(NodeId)
        .filter(|n| !faults.is_faulty(*n))
        .collect();
    healthy.shuffle(rng);

    let mut scheme = PlacementScheme::new();
    // Checked before pushing: a zero-node job gets an empty scheme, not a
    // spurious first group (which would charge the mix accounting for nodes
    // the job never asked for).
    for chunk in healthy.chunks(nodes_per_group) {
        if chunk.len() < nodes_per_group || scheme.nodes_placed() >= job_nodes {
            break;
        }
        scheme.push(TpGroup::new(chunk.to_vec()));
    }
    scheme
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::BTreeSet;

    #[test]
    fn greedy_fills_the_job_when_capacity_allows() {
        let mut rng = StdRng::seed_from_u64(1);
        let scheme = greedy_placement(100, &FaultSet::new(), 8, 64, &mut rng);
        assert!(scheme.nodes_placed() >= 64);
        assert!(scheme.validate(8, &BTreeSet::new()).is_ok());
    }

    #[test]
    fn greedy_never_places_faulty_nodes() {
        let mut rng = StdRng::seed_from_u64(2);
        let faults = FaultSet::from_nodes((0..10).map(NodeId));
        let scheme = greedy_placement(40, &faults, 4, 40, &mut rng);
        let faulty: BTreeSet<NodeId> = faults.iter().collect();
        assert!(scheme.validate(4, &faulty).is_ok());
        assert!(scheme.nodes_placed() <= 30);
    }

    #[test]
    fn greedy_is_deterministic_for_a_seed() {
        let a = greedy_placement(64, &FaultSet::new(), 4, 64, &mut StdRng::seed_from_u64(7));
        let b = greedy_placement(64, &FaultSet::new(), 4, 64, &mut StdRng::seed_from_u64(7));
        assert_eq!(a, b);
    }

    #[test]
    fn a_zero_node_job_places_nothing() {
        // Regression: the group loop used to push one group before noticing
        // the job was already satisfied, charging a zero-node job for
        // nodes_per_group nodes.
        let mut rng = StdRng::seed_from_u64(4);
        let scheme = greedy_placement(32, &FaultSet::new(), 4, 0, &mut rng);
        assert!(scheme.is_empty());
        assert_eq!(scheme.nodes_placed(), 0);
    }

    #[test]
    fn insufficient_capacity_returns_partial_placement() {
        let mut rng = StdRng::seed_from_u64(3);
        let scheme = greedy_placement(10, &FaultSet::new(), 4, 1000, &mut rng);
        assert_eq!(scheme.len(), 2);
        assert!(!scheme.satisfies(1000));
    }
}
