//! `Deployment-Strategy` — Algorithm 3 of the paper (the deployment phase of
//! §4.3).
//!
//! Nodes are physically wired so that HBD neighbours sit under *different*
//! ToRs: with `p` nodes per ToR, node `N_n`'s main HBD links go to `N_{n±p}`
//! and its backup links to `N_{n±2p}` (Fig 7). Equivalently, the cluster
//! decomposes into `p` parallel **sub-lines**; sub-line `i` threads the `i`-th
//! node of every ToR. TP rings run along a sub-line (crossing ToRs over the
//! HBD, which never touches the DCN) while the orthogonal parallelism
//! dimension (DP/CP) pairs up the `p` same-rank nodes that share a ToR — so its
//! traffic stays under the ToR switch.

use hbd_types::{HbdError, NodeId, Result};
use serde::{Deserialize, Serialize};

/// The deployment wiring of the cluster.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeploymentStrategy {
    nodes: usize,
    /// Nodes per ToR (`p` in the paper's notation) — also the number of
    /// parallel sub-lines.
    nodes_per_tor: usize,
}

impl DeploymentStrategy {
    /// Creates a deployment for `nodes` nodes with `nodes_per_tor` nodes per
    /// rack.
    pub fn new(nodes: usize, nodes_per_tor: usize) -> Result<Self> {
        if nodes == 0 {
            return Err(HbdError::invalid_config(
                "deployment needs at least one node",
            ));
        }
        if nodes_per_tor == 0 {
            return Err(HbdError::invalid_config("nodes_per_tor must be positive"));
        }
        Ok(DeploymentStrategy {
            nodes,
            nodes_per_tor,
        })
    }

    /// Number of sub-lines (`p`).
    pub fn sublines(&self) -> usize {
        self.nodes_per_tor
    }

    /// Length of each sub-line (`l = ⌊n / p⌋`); trailing nodes that do not fill
    /// a complete ToR row are appended to the deployment order at the end.
    pub fn subline_length(&self) -> usize {
        self.nodes / self.nodes_per_tor
    }

    /// The full deployment order `S_deploy`: sub-line 0 first (nodes
    /// 0, p, 2p, …), then sub-line 1 (1, p+1, …), and so on — adjacent elements
    /// are HBD neighbours.
    pub fn deployment_order(&self) -> Vec<NodeId> {
        let p = self.nodes_per_tor;
        let l = self.subline_length();
        let mut order = Vec::with_capacity(self.nodes);
        for i in 0..p {
            for j in 0..l {
                order.push(NodeId(i + j * p));
            }
        }
        // Nodes beyond l*p (a trailing partial rack) are appended in id order.
        for n in l * p..self.nodes {
            order.push(NodeId(n));
        }
        order
    }

    /// The nodes of sub-line `i`, in HBD order.
    pub fn subline(&self, i: usize) -> Result<Vec<NodeId>> {
        if i >= self.sublines() {
            return Err(HbdError::unknown_entity(format!(
                "sub-line {i} of a {}-sub-line deployment",
                self.sublines()
            )));
        }
        Ok((0..self.subline_length())
            .map(|j| NodeId(i + j * self.nodes_per_tor))
            .collect())
    }

    /// The segment of sub-line `subline` that lies inside aggregation-switch
    /// domain `domain`, given `tors_per_domain` racks per domain.
    pub fn subline_segment(
        &self,
        subline: usize,
        domain: usize,
        tors_per_domain: usize,
    ) -> Result<Vec<NodeId>> {
        let full = self.subline(subline)?;
        let start = domain * tors_per_domain;
        let end = ((domain + 1) * tors_per_domain).min(full.len());
        if start >= full.len() {
            return Err(HbdError::unknown_entity(format!(
                "domain {domain} of sub-line {subline}"
            )));
        }
        Ok(full[start..end].to_vec())
    }

    /// The HBD neighbours (main links) of a node: `n ± p`.
    pub fn main_neighbours(&self, node: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        if let Some(prev) = node.checked_sub(self.nodes_per_tor) {
            out.push(prev);
        }
        let next = node.offset(self.nodes_per_tor);
        if next.index() < self.nodes {
            out.push(next);
        }
        out
    }

    /// The HBD backup neighbours of a node: `n ± 2p`.
    pub fn backup_neighbours(&self, node: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        if let Some(prev) = node.checked_sub(2 * self.nodes_per_tor) {
            out.push(prev);
        }
        let next = node.offset(2 * self.nodes_per_tor);
        if next.index() < self.nodes {
            out.push(next);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates() {
        assert!(DeploymentStrategy::new(0, 4).is_err());
        assert!(DeploymentStrategy::new(16, 0).is_err());
        assert!(DeploymentStrategy::new(16, 4).is_ok());
    }

    #[test]
    fn deployment_order_interleaves_tors() {
        // Fig 7: 16 nodes, 4 per ToR -> sub-line 0 is N1, N5, N9, N13 (0-based:
        // 0, 4, 8, 12).
        let deploy = DeploymentStrategy::new(16, 4).unwrap();
        let order = deploy.deployment_order();
        assert_eq!(order.len(), 16);
        assert_eq!(&order[0..4], &[NodeId(0), NodeId(4), NodeId(8), NodeId(12)]);
        assert_eq!(&order[4..8], &[NodeId(1), NodeId(5), NodeId(9), NodeId(13)]);
        // Every node appears exactly once.
        let mut seen: Vec<usize> = order.iter().map(|n| n.index()).collect();
        seen.sort();
        assert_eq!(seen, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn sublines_and_segments() {
        let deploy = DeploymentStrategy::new(32, 4).unwrap();
        assert_eq!(deploy.sublines(), 4);
        assert_eq!(deploy.subline_length(), 8);
        let line2 = deploy.subline(2).unwrap();
        assert_eq!(line2[0], NodeId(2));
        assert_eq!(line2[7], NodeId(30));
        assert!(deploy.subline(4).is_err());
        // Two ToRs per aggregation domain: segment 1 of sub-line 2 covers the
        // 3rd and 4th racks.
        let segment = deploy.subline_segment(2, 1, 2).unwrap();
        assert_eq!(segment, vec![NodeId(10), NodeId(14)]);
        assert!(deploy.subline_segment(2, 9, 2).is_err());
    }

    #[test]
    fn main_and_backup_neighbours_follow_fig7() {
        let deploy = DeploymentStrategy::new(16, 4).unwrap();
        assert_eq!(
            deploy.main_neighbours(NodeId(5)),
            vec![NodeId(1), NodeId(9)]
        );
        assert_eq!(deploy.backup_neighbours(NodeId(5)), vec![NodeId(13)]);
        assert_eq!(deploy.main_neighbours(NodeId(0)), vec![NodeId(4)]);
        assert_eq!(deploy.backup_neighbours(NodeId(14)), vec![NodeId(6)]);
        // HBD neighbours are never under the same ToR.
        for n in 0..16 {
            for neighbour in deploy.main_neighbours(NodeId(n)) {
                assert_ne!(n / 4, neighbour.index() / 4);
            }
        }
    }

    #[test]
    fn partial_trailing_rack_nodes_are_appended() {
        let deploy = DeploymentStrategy::new(18, 4).unwrap();
        let order = deploy.deployment_order();
        assert_eq!(order.len(), 18);
        assert_eq!(order[16], NodeId(16));
        assert_eq!(order[17], NodeId(17));
    }
}
