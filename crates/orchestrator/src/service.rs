//! The placement-query service layer: epoch-swapped cluster snapshots and
//! batched placement / max-job / what-if queries against them.
//!
//! The orchestration algorithms of this crate answer *one* question against
//! *one* fault set. Operationally (ROADMAP north star, and the serving-layer
//! lesson of Mission Apollo) the workload is different: many concurrent
//! queries against one slowly-mutating cluster state. This module provides
//! that layer:
//!
//! * [`ClusterSnapshot`] — an immutable pairing of the (shared, `Arc`'d)
//!   orchestrator topology with one fault/exclusion state;
//! * [`SnapshotStore`] — an [`EpochCell`] of snapshots: writers publish a new
//!   fault state as a new epoch, readers pin whatever epoch is current and
//!   never block each other (see `hbd_types::epoch` for the protocol);
//! * [`PlacementService`] — answers batches of [`PlacementQuery`]s against
//!   the current snapshot, amortising one memoized `SearchScratch` per
//!   distinct `(k, nodes_per_group)` key over the whole batch and fanning the
//!   per-query searches out with [`hbd_types::par`].
//!
//! # Determinism
//!
//! Every answer is produced by the same code path as the single-query oracle
//! — [`FatTreeOrchestrator::orchestrate_par`] for placements,
//! [`max_orchestratable_job`] for
//! max-job queries — evaluated sequentially per query against a scratch that
//! is bit-identical to the one the oracle would build (pinned by the
//! `service_oracle` property suite). The thread count only decides how
//! queries are *fanned out*, never how any one query is *answered*, and the
//! set of scratch keys built for a batch is derived from the batch contents
//! alone; so answers **and** cost counters are byte-identical for any thread
//! count.

use crate::fat_tree::{FatTreeOrchestrator, OrchestrationRequest, SearchScratch};
use crate::scheme::PlacementScheme;
use crate::search::{max_job_with_scratch, max_orchestratable_job};
use hbd_types::epoch::{EpochCell, Versioned};
use hbd_types::par::par_map;
use hbd_types::Result;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::{Arc, Mutex};
use topology::FaultSet;

/// A scratch key: the pair a `SearchScratch` depends on besides the fault
/// set. One scratch per key serves every job size.
type ScratchKey = (usize, usize); // (k, nodes_per_group)

/// One immutable view of the cluster: the orchestrator (topology + wiring,
/// shared by every snapshot of a store) plus the fault/exclusion state the
/// snapshot was published with.
#[derive(Debug, Clone)]
pub struct ClusterSnapshot {
    orchestrator: Arc<FatTreeOrchestrator>,
    faults: FaultSet,
}

impl ClusterSnapshot {
    /// Creates a snapshot of `orchestrator` under `faults`.
    pub fn new(orchestrator: Arc<FatTreeOrchestrator>, faults: FaultSet) -> Self {
        ClusterSnapshot {
            orchestrator,
            faults,
        }
    }

    /// The orchestrator this snapshot places against.
    pub fn orchestrator(&self) -> &FatTreeOrchestrator {
        &self.orchestrator
    }

    /// The fault/exclusion state of this snapshot (faulty nodes plus whatever
    /// the publisher excluded, e.g. nodes occupied by running jobs).
    pub fn faults(&self) -> &FaultSet {
        &self.faults
    }
}

/// The epoch-swapped store of [`ClusterSnapshot`]s. Readers
/// ([`PlacementService`], or anyone calling [`load`](Self::load)) pin the
/// current snapshot with one `Arc` clone; writers replace the fault state
/// wholesale with [`publish`](Self::publish). The orchestrator itself is
/// immutable for the lifetime of the store and shared across epochs.
#[derive(Debug)]
pub struct SnapshotStore {
    cell: EpochCell<ClusterSnapshot>,
}

impl SnapshotStore {
    /// Creates the store with `faults` as the epoch-0 state.
    pub fn new(orchestrator: Arc<FatTreeOrchestrator>, faults: FaultSet) -> Self {
        SnapshotStore {
            cell: EpochCell::new(ClusterSnapshot::new(orchestrator, faults)),
        }
    }

    /// Pins and returns the current snapshot.
    pub fn load(&self) -> Arc<Versioned<ClusterSnapshot>> {
        self.cell.load()
    }

    /// The current epoch — a lock-free staleness probe.
    pub fn epoch(&self) -> u64 {
        self.cell.epoch()
    }

    /// Publishes `faults` as the next epoch's state (the orchestrator is
    /// carried over) and returns that epoch.
    pub fn publish(&self, faults: FaultSet) -> u64 {
        let orchestrator = Arc::clone(&self.cell.load().value.orchestrator);
        self.cell
            .publish(ClusterSnapshot::new(orchestrator, faults))
    }
}

/// One question to the placement service.
#[derive(Debug, Clone, PartialEq)]
pub enum PlacementQuery {
    /// "Place this job on the current snapshot" — answered exactly like
    /// [`FatTreeOrchestrator::orchestrate_par`].
    Place(OrchestrationRequest),
    /// "How large a job could the current snapshot still place?" — answered
    /// exactly like [`max_orchestratable_job`].
    MaxJob {
        /// Nodes per TP group of the hypothetical job.
        nodes_per_group: usize,
        /// OCSTrx bundle count of the K-Hop topology.
        k: usize,
    },
    /// "Could this job still be placed if these *additional* nodes failed?" —
    /// a placement against `snapshot faults ∪ extra_faults`. The overlay is
    /// query-local: it never touches the shared snapshot or the shared
    /// scratch cache.
    WhatIf {
        /// The job to place.
        request: OrchestrationRequest,
        /// Hypothetical extra faults overlaid on the snapshot's state.
        extra_faults: FaultSet,
    },
}

/// The answer to one [`PlacementQuery`], in batch order.
#[derive(Debug, Clone, PartialEq)]
pub enum PlacementAnswer {
    /// Outcome of a `Place` or `WhatIf` query — bit-identical to what
    /// [`FatTreeOrchestrator::orchestrate_par`] returns for the same request
    /// and (effective) fault set, including the error for invalid or
    /// unsatisfiable requests.
    Placement(Result<PlacementScheme>),
    /// Outcome of a `MaxJob` query.
    MaxJob {
        /// The largest feasible job size in nodes (zero if nothing fits).
        job_nodes: usize,
    },
}

/// Which kind of query a [`QueryCost`] belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryKind {
    /// A `Place` query.
    Place,
    /// A `MaxJob` query.
    MaxJob,
    /// A `WhatIf` query.
    WhatIf,
}

/// Deterministic cost counters for one answered query — the input of the
/// modeled-latency accounting in the throughput experiment (never
/// wall-clock).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryCost {
    /// The query kind.
    pub kind: QueryKind,
    /// Search probes spent: constraint placements evaluated for `Place` /
    /// `WhatIf`, full feasibility searches for `MaxJob`.
    pub probes: usize,
    /// Whether the query built its own private scratch (what-if overlays
    /// always do; shared-state queries never do — theirs is accounted at the
    /// batch level).
    pub private_scratch: bool,
}

/// Batch-level counters of one [`PlacementService::answer_batch`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BatchStats {
    /// Queries answered (== batch length).
    pub queries: usize,
    /// Shared scratches built for this batch (one per `(k, nodes_per_group)`
    /// key not already cached for the snapshot's epoch).
    pub shared_scratch_builds: usize,
    /// Shared-scratch queries answered without building (cache or intra-batch
    /// amortisation).
    pub shared_scratch_reuses: usize,
    /// Private scratches built by what-if overlays.
    pub private_scratch_builds: usize,
    /// Total search probes across the batch (see [`QueryCost::probes`]).
    pub probes: usize,
    /// Queries rejected for invalid parameters.
    pub rejected: usize,
}

/// The outcome of one batch: every answer, its cost, and the epoch the whole
/// batch was answered against. The batch pins exactly one snapshot up front,
/// so every answer is consistent with that single epoch even while newer
/// epochs are being published concurrently.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchReport {
    /// The epoch every answer of this batch was computed against.
    pub epoch: u64,
    /// Answers, in query order.
    pub answers: Vec<PlacementAnswer>,
    /// Per-query cost counters, in query order.
    pub costs: Vec<QueryCost>,
    /// Batch-level counters.
    pub stats: BatchStats,
}

/// The memoized shared scratches of one epoch. Invalidated wholesale when a
/// newer epoch is observed.
#[derive(Debug, Default)]
struct ScratchCache {
    epoch: u64,
    scratches: BTreeMap<ScratchKey, Arc<SearchScratch>>,
}

/// Answers placement queries against the current [`SnapshotStore`] snapshot,
/// memoizing one `SearchScratch` per `(k, nodes_per_group)` key per epoch.
#[derive(Debug)]
pub struct PlacementService {
    store: Arc<SnapshotStore>,
    cache: Mutex<ScratchCache>,
}

impl PlacementService {
    /// Creates a service reading from `store`.
    pub fn new(store: Arc<SnapshotStore>) -> Self {
        PlacementService {
            store,
            cache: Mutex::new(ScratchCache::default()),
        }
    }

    /// The store this service reads from.
    pub fn store(&self) -> &Arc<SnapshotStore> {
        &self.store
    }

    /// Resolves (building where missing) the shared scratches for `keys`
    /// against `snapshot`, returning the key → scratch map and how many
    /// scratches were built. Missing keys are built under the cache lock,
    /// fanned over `threads`; if the cache has already moved to a *newer*
    /// epoch (a concurrent batch on a fresher snapshot claimed it), the
    /// scratches are built privately instead so the newer epoch's cache is
    /// never poisoned with stale state.
    fn shared_scratches(
        &self,
        snapshot: &Versioned<ClusterSnapshot>,
        keys: &BTreeSet<ScratchKey>,
        threads: usize,
    ) -> (BTreeMap<ScratchKey, Arc<SearchScratch>>, usize) {
        if keys.is_empty() {
            return (BTreeMap::new(), 0);
        }
        let build = |wanted: &[ScratchKey]| -> Vec<Arc<SearchScratch>> {
            par_map(threads, wanted, |_, &(k, nodes_per_group)| {
                let template = OrchestrationRequest {
                    job_nodes: nodes_per_group,
                    nodes_per_group,
                    k,
                };
                Arc::new(
                    snapshot
                        .value
                        .orchestrator()
                        .search_scratch(&template, snapshot.value.faults()),
                )
            })
        };

        let mut cache = self.cache.lock().expect("no scratch builder panicked");
        if cache.epoch < snapshot.epoch {
            cache.scratches.clear();
            cache.epoch = snapshot.epoch;
        }
        if cache.epoch > snapshot.epoch {
            // The cache belongs to a newer epoch: serve this (stale) batch
            // from private builds.
            drop(cache);
            let wanted: Vec<ScratchKey> = keys.iter().copied().collect();
            let built = build(&wanted);
            return (wanted.into_iter().zip(built).collect(), keys.len());
        }
        let missing: Vec<ScratchKey> = keys
            .iter()
            .copied()
            .filter(|key| !cache.scratches.contains_key(key))
            .collect();
        let built = build(&missing);
        for (key, scratch) in missing.iter().zip(built) {
            cache.scratches.insert(*key, scratch);
        }
        let map = keys
            .iter()
            .map(|key| (*key, Arc::clone(&cache.scratches[key])))
            .collect();
        (map, missing.len())
    }

    /// Answers one placement request against the current snapshot —
    /// bit-identical to [`FatTreeOrchestrator::orchestrate_par`] with the
    /// snapshot's fault set, but reusing the per-epoch scratch cache, so
    /// consecutive single placements against an unchanged snapshot skip the
    /// scratch rebuild. `threads` fans out the constraint probes of this one
    /// search (the answer is thread-count-invariant).
    pub fn place(&self, request: &OrchestrationRequest, threads: usize) -> Result<PlacementScheme> {
        request.validate()?;
        let snapshot = self.store.load();
        let keys = BTreeSet::from([(request.k, request.nodes_per_group)]);
        let (scratches, _) = self.shared_scratches(&snapshot, &keys, 1);
        let scratch = &scratches[&(request.k, request.nodes_per_group)];
        snapshot
            .value
            .orchestrator()
            .orchestrate_with_scratch(request, scratch, threads)
            .0
    }

    /// Answers a batch of queries against **one** pinned snapshot, fanning
    /// the per-query work over up to `threads` scoped threads. Shared-state
    /// queries (`Place`, `MaxJob`) amortise one memoized scratch per
    /// `(k, nodes_per_group)` key; what-if overlays build a private scratch
    /// against their merged fault set. Answers, order and cost counters are
    /// byte-identical for any thread count.
    pub fn answer_batch(&self, queries: &[PlacementQuery], threads: usize) -> BatchReport {
        let snapshot = self.store.load();

        // Which shared scratch keys the batch needs, derived from the batch
        // alone (invalid requests answer without a scratch, what-ifs build
        // privately).
        let mut keys: BTreeSet<ScratchKey> = BTreeSet::new();
        for query in queries {
            match query {
                PlacementQuery::Place(request) => {
                    if request.validate().is_ok() {
                        keys.insert((request.k, request.nodes_per_group));
                    }
                }
                PlacementQuery::MaxJob { nodes_per_group, k } => {
                    if *nodes_per_group > 0 && *k > 0 {
                        keys.insert((*k, *nodes_per_group));
                    }
                }
                PlacementQuery::WhatIf { .. } => {}
            }
        }
        let (scratches, shared_scratch_builds) = self.shared_scratches(&snapshot, &keys, threads);

        let outcomes = par_map(threads, queries, |_, query| {
            self.answer_one(query, &snapshot, &scratches)
        });

        let mut answers = Vec::with_capacity(outcomes.len());
        let mut costs = Vec::with_capacity(outcomes.len());
        let mut stats = BatchStats {
            queries: queries.len(),
            shared_scratch_builds,
            ..BatchStats::default()
        };
        for (query, (answer, cost)) in queries.iter().zip(outcomes) {
            stats.probes += cost.probes;
            stats.private_scratch_builds += usize::from(cost.private_scratch);
            match query {
                PlacementQuery::Place(request) => {
                    if request.validate().is_ok() {
                        stats.shared_scratch_reuses += 1;
                    } else {
                        stats.rejected += 1;
                    }
                }
                PlacementQuery::MaxJob { nodes_per_group, k } => {
                    // Degenerate geometries answer `job_nodes: 0` via the
                    // oracle path without a shared scratch; they are neither
                    // reuses nor rejections.
                    stats.shared_scratch_reuses += usize::from(*nodes_per_group > 0 && *k > 0);
                }
                PlacementQuery::WhatIf { request, .. } => {
                    stats.rejected += usize::from(request.validate().is_err());
                }
            }
            answers.push(answer);
            costs.push(cost);
        }
        // Of the shared-scratch queries, the ones whose key had to be built
        // this batch are builds, the rest amortised an existing scratch.
        stats.shared_scratch_reuses = stats
            .shared_scratch_reuses
            .saturating_sub(stats.shared_scratch_builds);

        BatchReport {
            epoch: snapshot.epoch,
            answers,
            costs,
            stats,
        }
    }

    /// Answers one query of a batch. Runs sequentially (inner `threads == 1`)
    /// so per-query probe counts are exact and thread-count-invariant; the
    /// batch-level fan-out is the parallelism.
    fn answer_one(
        &self,
        query: &PlacementQuery,
        snapshot: &Versioned<ClusterSnapshot>,
        scratches: &BTreeMap<ScratchKey, Arc<SearchScratch>>,
    ) -> (PlacementAnswer, QueryCost) {
        let orchestrator = snapshot.value.orchestrator();
        let faults = snapshot.value.faults();
        match query {
            PlacementQuery::Place(request) => {
                if let Err(error) = request.validate() {
                    return (
                        PlacementAnswer::Placement(Err(error)),
                        QueryCost {
                            kind: QueryKind::Place,
                            probes: 0,
                            private_scratch: false,
                        },
                    );
                }
                let scratch = &scratches[&(request.k, request.nodes_per_group)];
                let (outcome, probes) = orchestrator.orchestrate_with_scratch(request, scratch, 1);
                (
                    PlacementAnswer::Placement(outcome),
                    QueryCost {
                        kind: QueryKind::Place,
                        probes,
                        private_scratch: false,
                    },
                )
            }
            PlacementQuery::MaxJob { nodes_per_group, k } => {
                let report = match scratches.get(&(*k, *nodes_per_group)) {
                    Some(scratch) => {
                        max_job_with_scratch(orchestrator, *nodes_per_group, *k, scratch)
                    }
                    // Degenerate geometry: the oracle path rejects every
                    // probe itself.
                    None => max_orchestratable_job(orchestrator, *nodes_per_group, *k, faults, 1),
                };
                (
                    PlacementAnswer::MaxJob {
                        job_nodes: report.job_nodes,
                    },
                    QueryCost {
                        kind: QueryKind::MaxJob,
                        probes: report.probes,
                        private_scratch: false,
                    },
                )
            }
            PlacementQuery::WhatIf {
                request,
                extra_faults,
            } => {
                if let Err(error) = request.validate() {
                    return (
                        PlacementAnswer::Placement(Err(error)),
                        QueryCost {
                            kind: QueryKind::WhatIf,
                            probes: 0,
                            private_scratch: false,
                        },
                    );
                }
                let merged = faults.union(extra_faults);
                let scratch = orchestrator.search_scratch(request, &merged);
                let (outcome, probes) = orchestrator.orchestrate_with_scratch(request, &scratch, 1);
                (
                    PlacementAnswer::Placement(outcome),
                    QueryCost {
                        kind: QueryKind::WhatIf,
                        probes,
                        private_scratch: true,
                    },
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbd_types::NodeId;
    use topology::FatTree;

    fn store_with(faults: FaultSet) -> Arc<SnapshotStore> {
        let orch = Arc::new(FatTreeOrchestrator::new(FatTree::new(512, 16, 8).unwrap()).unwrap());
        Arc::new(SnapshotStore::new(orch, faults))
    }

    fn request(job_nodes: usize) -> OrchestrationRequest {
        OrchestrationRequest {
            job_nodes,
            nodes_per_group: 8,
            k: 2,
        }
    }

    #[test]
    fn store_publish_swaps_faults_and_keeps_the_orchestrator() {
        let store = store_with(FaultSet::new());
        assert_eq!(store.epoch(), 0);
        let faults = FaultSet::from_nodes([NodeId(3)]);
        assert_eq!(store.publish(faults.clone()), 1);
        let snapshot = store.load();
        assert_eq!(snapshot.epoch, 1);
        assert_eq!(snapshot.value.faults(), &faults);
        assert_eq!(snapshot.value.orchestrator().fat_tree().nodes(), 512);
    }

    #[test]
    fn place_matches_the_oracle_and_reuses_the_epoch_scratch() {
        let faults = FaultSet::from_nodes((0..12).map(|i| NodeId(i * 31)));
        let store = store_with(faults.clone());
        let service = PlacementService::new(Arc::clone(&store));
        let orch = store.load().value.orchestrator().clone();
        for job_nodes in [64usize, 256, 480, 1000] {
            let req = request(job_nodes);
            assert_eq!(
                service.place(&req, 1),
                orch.orchestrate_par(&req, &faults, 1),
                "job_nodes {job_nodes}"
            );
        }
        // Consecutive places against one epoch share the cached scratch: a
        // follow-up batch reports zero builds for the same key.
        let report = service.answer_batch(&[PlacementQuery::Place(request(64))], 1);
        assert_eq!(report.stats.shared_scratch_builds, 0);
        assert_eq!(report.stats.shared_scratch_reuses, 1);
    }

    #[test]
    fn batch_answers_every_query_kind_against_one_epoch() {
        let faults = FaultSet::from_nodes((0..20).map(|i| NodeId(i * 17)));
        let store = store_with(faults.clone());
        let service = PlacementService::new(Arc::clone(&store));
        let orch = store.load().value.orchestrator().clone();
        let extra = FaultSet::from_nodes((0..64).map(NodeId));
        let queries = vec![
            PlacementQuery::Place(request(256)),
            PlacementQuery::MaxJob {
                nodes_per_group: 8,
                k: 2,
            },
            PlacementQuery::WhatIf {
                request: request(256),
                extra_faults: extra.clone(),
            },
            PlacementQuery::Place(OrchestrationRequest {
                job_nodes: 0,
                nodes_per_group: 8,
                k: 2,
            }),
        ];
        let report = service.answer_batch(&queries, 2);
        assert_eq!(report.epoch, 0);
        assert_eq!(report.answers.len(), 4);
        assert_eq!(
            report.answers[0],
            PlacementAnswer::Placement(orch.orchestrate_par(&request(256), &faults, 1))
        );
        assert_eq!(
            report.answers[1],
            PlacementAnswer::MaxJob {
                job_nodes: max_orchestratable_job(&orch, 8, 2, &faults, 1).job_nodes
            }
        );
        assert_eq!(
            report.answers[2],
            PlacementAnswer::Placement(orchestrate_whatif(&orch, &request(256), &faults, &extra))
        );
        assert!(matches!(
            &report.answers[3],
            PlacementAnswer::Placement(Err(_))
        ));
        assert_eq!(report.stats.queries, 4);
        assert_eq!(report.stats.rejected, 1);
        // Place + MaxJob share one (k=2, m=8) scratch; the what-if builds its
        // own.
        assert_eq!(report.stats.shared_scratch_builds, 1);
        assert_eq!(report.stats.shared_scratch_reuses, 1);
        assert_eq!(report.stats.private_scratch_builds, 1);
        assert!(report.stats.probes > 0);
    }

    fn orchestrate_whatif(
        orch: &FatTreeOrchestrator,
        request: &OrchestrationRequest,
        faults: &FaultSet,
        extra: &FaultSet,
    ) -> Result<PlacementScheme> {
        orch.orchestrate_par(request, &faults.union(extra), 1)
    }

    #[test]
    fn batch_reports_are_thread_count_invariant() {
        let faults = FaultSet::from_nodes((0..30).map(|i| NodeId(i * 13)));
        let store = store_with(faults);
        let queries: Vec<PlacementQuery> = (1..=12)
            .map(|i| PlacementQuery::Place(request(i * 40)))
            .chain([PlacementQuery::MaxJob {
                nodes_per_group: 16,
                k: 2,
            }])
            .collect();
        // Fresh service per thread count so the scratch cache starts cold in
        // both runs and the build counters are comparable.
        let seq = PlacementService::new(Arc::clone(&store)).answer_batch(&queries, 1);
        let par = PlacementService::new(Arc::clone(&store)).answer_batch(&queries, 4);
        assert_eq!(seq, par);
    }

    #[test]
    fn publishing_a_new_epoch_invalidates_the_scratch_cache() {
        let store = store_with(FaultSet::new());
        let service = PlacementService::new(Arc::clone(&store));
        let queries = vec![PlacementQuery::Place(request(64))];
        let first = service.answer_batch(&queries, 1);
        assert_eq!((first.epoch, first.stats.shared_scratch_builds), (0, 1));
        let warm = service.answer_batch(&queries, 1);
        assert_eq!((warm.epoch, warm.stats.shared_scratch_builds), (0, 0));
        store.publish(FaultSet::from_nodes([NodeId(9)]));
        let cold = service.answer_batch(&queries, 1);
        assert_eq!((cold.epoch, cold.stats.shared_scratch_builds), (1, 1));
        // The new answer reflects the new fault state: node 9 is out.
        let PlacementAnswer::Placement(Ok(scheme)) = &cold.answers[0] else {
            panic!("one faulty node cannot make a 64-node job infeasible");
        };
        assert!(scheme.groups.iter().all(|g| !g.nodes.contains(&NodeId(9))));
    }

    #[test]
    fn what_if_overlays_do_not_leak_into_the_snapshot() {
        let store = store_with(FaultSet::new());
        let service = PlacementService::new(Arc::clone(&store));
        let extra = FaultSet::from_nodes((0..128).map(NodeId));
        let whatif = service.answer_batch(
            &[PlacementQuery::WhatIf {
                request: request(64),
                extra_faults: extra,
            }],
            1,
        );
        let after = service.answer_batch(&[PlacementQuery::Place(request(64))], 1);
        // The snapshot is still fault-free: the plain place may use the nodes
        // the what-if pretended to fail.
        let PlacementAnswer::Placement(Ok(scheme)) = &after.answers[0] else {
            panic!("healthy cluster must place");
        };
        assert!(scheme.groups.iter().any(|g| g.nodes[0].index() < 128));
        assert_eq!(whatif.stats.private_scratch_builds, 1);
        assert_eq!(store.epoch(), 0);
    }
}
