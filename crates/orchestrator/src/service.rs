//! The placement-query service layer: epoch-swapped cluster snapshots and
//! batched placement / max-job / what-if queries against them.
//!
//! The orchestration algorithms of this crate answer *one* question against
//! *one* fault set. Operationally (ROADMAP north star, and the serving-layer
//! lesson of Mission Apollo) the workload is different: many concurrent
//! queries against one slowly-mutating cluster state. This module provides
//! that layer:
//!
//! * [`ClusterSnapshot`] — an immutable pairing of the (shared, `Arc`'d)
//!   orchestrator topology with one fault/exclusion state;
//! * [`SnapshotStore`] — an [`EpochCell`] of snapshots: writers publish a new
//!   fault state as a new epoch, readers pin whatever epoch is current and
//!   never block each other (see `hbd_types::epoch` for the protocol);
//! * [`PlacementService`] — answers batches of [`PlacementQuery`]s against
//!   the current snapshot, amortising one memoized `SearchScratch` per
//!   distinct `(k, nodes_per_group)` key over the whole batch and fanning the
//!   per-query searches out with [`hbd_types::par`].
//!
//! # Determinism
//!
//! Every answer is produced by the same code path as the single-query oracle
//! — [`FatTreeOrchestrator::orchestrate_par`] for placements,
//! [`max_orchestratable_job`] for
//! max-job queries — evaluated sequentially per query against a scratch that
//! is bit-identical to the one the oracle would build (pinned by the
//! `service_oracle` property suite). The thread count only decides how
//! queries are *fanned out*, never how any one query is *answered*, and the
//! set of scratch keys built for a batch is derived from the batch contents
//! alone; so answers **and** cost counters are byte-identical for any thread
//! count.

use crate::fat_tree::{
    FatTreeOrchestrator, OrchestrationRequest, ScratchPatchStats, SearchScratch,
};
use crate::scheme::PlacementScheme;
use crate::search::{max_job_with_scratch, max_orchestratable_job};
use hbd_types::epoch::{EpochCell, Versioned};
use hbd_types::par::par_map;
use hbd_types::Result;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::{Arc, Mutex};
use topology::FaultSet;

/// A scratch key: the pair a `SearchScratch` depends on besides the fault
/// set. One scratch per key serves every job size.
type ScratchKey = (usize, usize); // (k, nodes_per_group)

/// One distinct shared-state question of a batch — the unit of the per-epoch
/// answer memo. Invalid/degenerate shapes never become work items; they are
/// answered per query without touching shared state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum WorkItem {
    /// `(k, nodes_per_group, job_nodes)` of a valid `Place` request.
    Place(usize, usize, usize),
    /// `(k, nodes_per_group)` of a non-degenerate `MaxJob` query.
    MaxJob(usize, usize),
}

/// One immutable view of the cluster: the orchestrator (topology + wiring,
/// shared by every snapshot of a store) plus the fault/exclusion state the
/// snapshot was published with.
#[derive(Debug, Clone)]
pub struct ClusterSnapshot {
    orchestrator: Arc<FatTreeOrchestrator>,
    faults: FaultSet,
}

impl ClusterSnapshot {
    /// Creates a snapshot of `orchestrator` under `faults`.
    pub fn new(orchestrator: Arc<FatTreeOrchestrator>, faults: FaultSet) -> Self {
        ClusterSnapshot {
            orchestrator,
            faults,
        }
    }

    /// The orchestrator this snapshot places against.
    pub fn orchestrator(&self) -> &FatTreeOrchestrator {
        &self.orchestrator
    }

    /// The fault/exclusion state of this snapshot (faulty nodes plus whatever
    /// the publisher excluded, e.g. nodes occupied by running jobs).
    pub fn faults(&self) -> &FaultSet {
        &self.faults
    }
}

/// The epoch-swapped store of [`ClusterSnapshot`]s. Readers
/// ([`PlacementService`], or anyone calling [`load`](Self::load)) pin the
/// current snapshot with one `Arc` clone; writers replace the fault state
/// wholesale with [`publish`](Self::publish). The orchestrator itself is
/// immutable for the lifetime of the store and shared across epochs.
#[derive(Debug)]
pub struct SnapshotStore {
    cell: EpochCell<ClusterSnapshot>,
}

impl SnapshotStore {
    /// Creates the store with `faults` as the epoch-0 state.
    pub fn new(orchestrator: Arc<FatTreeOrchestrator>, faults: FaultSet) -> Self {
        SnapshotStore {
            cell: EpochCell::new(ClusterSnapshot::new(orchestrator, faults)),
        }
    }

    /// Pins and returns the current snapshot.
    pub fn load(&self) -> Arc<Versioned<ClusterSnapshot>> {
        self.cell.load()
    }

    /// The current epoch — a lock-free staleness probe.
    pub fn epoch(&self) -> u64 {
        self.cell.epoch()
    }

    /// Publishes `faults` as the next epoch's state (the orchestrator is
    /// carried over) and returns that epoch.
    pub fn publish(&self, faults: FaultSet) -> u64 {
        let orchestrator = Arc::clone(&self.cell.load().value.orchestrator);
        self.cell
            .publish(ClusterSnapshot::new(orchestrator, faults))
    }

    /// Publishes the next epoch by applying `delta` to the **current**
    /// snapshot's fault state — add every occupied and faulted node, remove
    /// every released one. The edit runs under the store's write lock
    /// ([`EpochCell::publish_with`]), so concurrent delta publishers compose
    /// instead of racing, and its cost is proportional to the delta (one
    /// word-wise clone plus per-released-node flips), never to a state
    /// rebuilt outside the store. An empty delta publishes nothing and
    /// returns the current epoch unchanged.
    pub fn publish_delta(&self, delta: &SnapshotDelta) -> u64 {
        if delta.is_empty() {
            return self.cell.epoch();
        }
        self.cell.publish_with(|current| {
            let mut faults = current.value.faults.clone();
            faults.union_with(&delta.occupied);
            faults.union_with(&delta.faulted);
            for node in delta.released.iter() {
                faults.remove(node);
            }
            ClusterSnapshot::new(Arc::clone(&current.value.orchestrator), faults)
        })
    }
}

/// A publish-sized edit to the snapshot fault/exclusion state: which nodes
/// left service (occupied by a new placement, or faulted) and which returned.
/// [`SnapshotStore::publish_delta`] applies it on top of the current
/// snapshot. Exclusion ledgers (`dcn::jobmix::ExclusionLedger`) emit these
/// natively by recording net flips between publishes, so a publish never has
/// to clone or rebuild the full exclusion union outside the store.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SnapshotDelta {
    /// Nodes newly excluded because a placement occupies them.
    pub occupied: FaultSet,
    /// Nodes newly excluded because they faulted.
    pub faulted: FaultSet,
    /// Nodes returned to service (released by a departure, or repaired).
    pub released: FaultSet,
}

impl SnapshotDelta {
    /// An all-empty delta; publishing it is a no-op.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of node flips the delta carries.
    pub fn len(&self) -> usize {
        self.occupied.len() + self.faulted.len() + self.released.len()
    }

    /// Whether the delta excludes and releases nothing.
    pub fn is_empty(&self) -> bool {
        self.occupied.is_empty() && self.faulted.is_empty() && self.released.is_empty()
    }
}

/// One question to the placement service.
#[derive(Debug, Clone, PartialEq)]
pub enum PlacementQuery {
    /// "Place this job on the current snapshot" — answered exactly like
    /// [`FatTreeOrchestrator::orchestrate_par`].
    Place(OrchestrationRequest),
    /// "How large a job could the current snapshot still place?" — answered
    /// exactly like [`max_orchestratable_job`].
    MaxJob {
        /// Nodes per TP group of the hypothetical job.
        nodes_per_group: usize,
        /// OCSTrx bundle count of the K-Hop topology.
        k: usize,
    },
    /// "Could this job still be placed if these *additional* nodes failed?" —
    /// a placement against `snapshot faults ∪ extra_faults`. The overlay is
    /// query-local: it never touches the shared snapshot or the shared
    /// scratch cache.
    WhatIf {
        /// The job to place.
        request: OrchestrationRequest,
        /// Hypothetical extra faults overlaid on the snapshot's state.
        extra_faults: FaultSet,
    },
}

/// The answer to one [`PlacementQuery`], in batch order.
#[derive(Debug, Clone, PartialEq)]
pub enum PlacementAnswer {
    /// Outcome of a `Place` or `WhatIf` query — bit-identical to what
    /// [`FatTreeOrchestrator::orchestrate_par`] returns for the same request
    /// and (effective) fault set, including the error for invalid or
    /// unsatisfiable requests.
    Placement(Result<PlacementScheme>),
    /// Outcome of a `MaxJob` query.
    MaxJob {
        /// The largest feasible job size in nodes (zero if nothing fits).
        job_nodes: usize,
    },
}

/// Which kind of query a [`QueryCost`] belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryKind {
    /// A `Place` query.
    Place,
    /// A `MaxJob` query.
    MaxJob,
    /// A `WhatIf` query.
    WhatIf,
}

/// Deterministic cost counters for one answered query — the input of the
/// modeled-latency accounting in the throughput experiment (never
/// wall-clock).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryCost {
    /// The query kind.
    pub kind: QueryKind,
    /// Search probes spent: constraint placements evaluated for `Place` /
    /// `WhatIf`, full feasibility searches for `MaxJob`.
    pub probes: usize,
    /// Whether the query built its own private scratch (what-if overlays
    /// always do; shared-state queries never do — theirs is accounted at the
    /// batch level).
    pub private_scratch: bool,
}

/// Batch-level counters of one [`PlacementService::answer_batch`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BatchStats {
    /// Queries answered (== batch length).
    pub queries: usize,
    /// Shared scratches built for this batch (one per `(k, nodes_per_group)`
    /// key not already cached for the snapshot's epoch).
    pub shared_scratch_builds: usize,
    /// Shared-scratch queries answered without building (cache or intra-batch
    /// amortisation).
    pub shared_scratch_reuses: usize,
    /// Private scratches built by what-if overlays.
    pub private_scratch_builds: usize,
    /// Total search probes across the batch (see [`QueryCost::probes`]).
    pub probes: usize,
    /// Queries rejected for invalid parameters.
    pub rejected: usize,
}

/// The outcome of one batch: every answer, its cost, and the epoch the whole
/// batch was answered against. The batch pins exactly one snapshot up front,
/// so every answer is consistent with that single epoch even while newer
/// epochs are being published concurrently.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchReport {
    /// The epoch every answer of this batch was computed against.
    pub epoch: u64,
    /// Answers, in query order.
    pub answers: Vec<PlacementAnswer>,
    /// Per-query cost counters, in query order.
    pub costs: Vec<QueryCost>,
    /// Batch-level counters.
    pub stats: BatchStats,
}

/// The deterministic modeled-latency pricing of a [`BatchReport`] — fixed
/// per-probe / per-search / per-build terms dealt onto a fixed-width modeled
/// lane pool, **never wall-clock**. This is the cost model the throughput
/// and overload experiments (and the admission controller's saturation
/// signal) share: shared scratch builds are serial (they gate the fan-out),
/// then each query's cost lands round-robin on one of `lanes` modeled lanes
/// and the batch completes when the longest lane does.
///
/// The lane width is part of the *model*, not of the execution: `--threads`
/// changes how the real computation fans out, while the modeled numbers
/// depend only on the (thread-invariant) cost counters, so every priced
/// latency is bit-stable in the seed and invariant in the thread count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModeledLatency {
    /// Flat modeled dispatch overhead per query, in microseconds.
    pub query_overhead_us: f64,
    /// Modeled cost of one constraint-placement probe (`Place` / `WhatIf`).
    pub probe_us: f64,
    /// Modeled cost of one max-job feasibility search.
    pub search_us: f64,
    /// Modeled cost of one scratch build (shared or private).
    pub build_us: f64,
    /// Width of the modeled worker pool a batch fans out over.
    pub lanes: usize,
}

impl ModeledLatency {
    /// The workspace-standard pricing for an `nodes`-node snapshot: 5 µs
    /// per-query overhead, probe/search/build terms linear in cluster size,
    /// eight modeled lanes — exactly the constants the
    /// `ext_service_throughput` experiment has always used.
    pub fn for_cluster(nodes: usize) -> Self {
        ModeledLatency {
            query_overhead_us: 5.0,
            probe_us: 0.02 * nodes as f64,
            search_us: 0.10 * nodes as f64,
            build_us: 0.08 * nodes as f64,
            lanes: 8,
        }
    }

    /// The modeled service time of one answered batch, in microseconds.
    pub fn batch_service_us(&self, report: &BatchReport) -> f64 {
        let mut lanes = vec![0.0f64; self.lanes.max(1)];
        let width = lanes.len();
        for (i, cost) in report.costs.iter().enumerate() {
            let per_probe = match cost.kind {
                QueryKind::MaxJob => self.search_us,
                QueryKind::Place | QueryKind::WhatIf => self.probe_us,
            };
            let private = if cost.private_scratch {
                self.build_us
            } else {
                0.0
            };
            lanes[i % width] += self.query_overhead_us + private + cost.probes as f64 * per_probe;
        }
        let slowest_lane = lanes.iter().copied().fold(0.0f64, f64::max);
        report.stats.shared_scratch_builds as f64 * self.build_us + slowest_lane
    }
}

/// Cumulative incremental-publish accounting of one [`PlacementService`]:
/// how its shared scratches were materialized across epochs, and what the
/// patched ones re-orchestrated versus carried over.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PatchTally {
    /// Shared-scratch materializations that patched the previous epoch's
    /// scratch of the same key (`FatTreeOrchestrator::patch_scratch`).
    pub patched_builds: usize,
    /// Shared-scratch materializations built cold — no surviving previous-
    /// epoch scratch for the key. (Private builds for stale-snapshot batches
    /// bypass the cache and are not tallied.)
    pub cold_builds: usize,
    /// Segment/domain counts summed over every patched build.
    pub stats: ScratchPatchStats,
}

/// The memoized per-epoch state of a service. When a newer epoch is
/// observed, the scratches are **not** discarded: they move to `stale` and
/// become the patch bases of the new epoch's scratches, so materializing a
/// key costs the fault-set *delta* between the epochs instead of a cluster-
/// sized rebuild. The answer memo (one entry per distinct `Place` / `MaxJob`
/// shape) is dropped on every epoch advance — answers are deterministic
/// functions of `(shape, epoch state)`, so within one epoch a repeated shape
/// replays its `(answer, probes)` pair bit-for-bit instead of re-searching.
#[derive(Debug, Default)]
struct ScratchCache {
    epoch: u64,
    scratches: BTreeMap<ScratchKey, Arc<SearchScratch>>,
    /// Patch bases: the newest scratch of each key from earlier epochs.
    stale: BTreeMap<ScratchKey, Arc<SearchScratch>>,
    /// `(k, nodes_per_group, job_nodes)` → this epoch's `(answer, probes)`.
    place_memo: BTreeMap<(usize, usize, usize), (Result<PlacementScheme>, usize)>,
    /// `(k, nodes_per_group)` → this epoch's `(job_nodes, probes)`.
    max_job_memo: BTreeMap<ScratchKey, (usize, usize)>,
    tally: PatchTally,
}

/// Answers placement queries against the current [`SnapshotStore`] snapshot,
/// memoizing one `SearchScratch` per `(k, nodes_per_group)` key per epoch.
#[derive(Debug)]
pub struct PlacementService {
    store: Arc<SnapshotStore>,
    cache: Mutex<ScratchCache>,
}

impl PlacementService {
    /// Creates a service reading from `store`.
    pub fn new(store: Arc<SnapshotStore>) -> Self {
        PlacementService {
            store,
            cache: Mutex::new(ScratchCache::default()),
        }
    }

    /// The store this service reads from.
    pub fn store(&self) -> &Arc<SnapshotStore> {
        &self.store
    }

    /// The cumulative incremental-publish accounting: how this service's
    /// shared scratches were materialized (patched forward vs built cold)
    /// and what the patches re-orchestrated versus carried over.
    pub fn patch_tally(&self) -> PatchTally {
        self.cache
            .lock()
            .expect("no scratch builder panicked")
            .tally
    }

    /// Resolves (materializing where missing) the shared scratches for
    /// `keys` against `snapshot`, returning the key → scratch map and how
    /// many scratches were materialized. A missing key whose previous
    /// epoch's scratch survives in the cache is *patched* forward
    /// (delta-proportional); otherwise it is built cold. Both count as
    /// builds — the build counter means "materializations for this epoch",
    /// however cheap. Missing keys are resolved under the cache lock, fanned
    /// over `threads`; if the cache has already moved to a *newer* epoch (a
    /// concurrent batch on a fresher snapshot claimed it), the scratches are
    /// built privately instead so the newer epoch's cache is never poisoned
    /// with stale state.
    fn shared_scratches(
        &self,
        snapshot: &Versioned<ClusterSnapshot>,
        keys: &BTreeSet<ScratchKey>,
        threads: usize,
    ) -> (BTreeMap<ScratchKey, Arc<SearchScratch>>, usize) {
        if keys.is_empty() {
            return (BTreeMap::new(), 0);
        }
        let template = |(k, nodes_per_group): ScratchKey| OrchestrationRequest {
            job_nodes: nodes_per_group,
            nodes_per_group,
            k,
        };

        let mut cache = self.cache.lock().expect("no scratch builder panicked");
        if cache.epoch < snapshot.epoch {
            // Epoch advance: the outgoing scratches become patch bases, the
            // per-epoch answer memo dies with its epoch.
            let outgoing = std::mem::take(&mut cache.scratches);
            cache.stale.extend(outgoing);
            cache.place_memo.clear();
            cache.max_job_memo.clear();
            cache.epoch = snapshot.epoch;
        }
        if cache.epoch > snapshot.epoch {
            // The cache belongs to a newer epoch: serve this (stale) batch
            // from private cold builds.
            drop(cache);
            let wanted: Vec<ScratchKey> = keys.iter().copied().collect();
            let built = par_map(threads, &wanted, |_, &key| {
                Arc::new(
                    snapshot
                        .value
                        .orchestrator()
                        .search_scratch(&template(key), snapshot.value.faults()),
                )
            });
            return (wanted.into_iter().zip(built).collect(), keys.len());
        }
        let missing: Vec<(ScratchKey, Option<Arc<SearchScratch>>)> = keys
            .iter()
            .copied()
            .filter(|key| !cache.scratches.contains_key(key))
            .map(|key| (key, cache.stale.get(&key).cloned()))
            .collect();
        let built = par_map(threads, &missing, |_, (key, base)| {
            let request = template(*key);
            let orchestrator = snapshot.value.orchestrator();
            match base {
                Some(old) => {
                    let (scratch, stats) =
                        orchestrator.patch_scratch(&request, old, snapshot.value.faults());
                    (Arc::new(scratch), Some(stats))
                }
                None => (
                    Arc::new(orchestrator.search_scratch(&request, snapshot.value.faults())),
                    None,
                ),
            }
        });
        for ((key, _), (scratch, patch)) in missing.iter().zip(built) {
            match patch {
                Some(stats) => {
                    cache.tally.patched_builds += 1;
                    cache.tally.stats.absorb(&stats);
                }
                None => cache.tally.cold_builds += 1,
            }
            cache.scratches.insert(*key, scratch);
        }
        let map = keys
            .iter()
            .map(|key| (*key, Arc::clone(&cache.scratches[key])))
            .collect();
        (map, missing.len())
    }

    /// Answers one placement request against the current snapshot —
    /// bit-identical to [`FatTreeOrchestrator::orchestrate_par`] with the
    /// snapshot's fault set, but reusing the per-epoch scratch cache *and*
    /// the per-epoch answer memo: a request shape already answered this
    /// epoch replays its answer without searching at all (the answer is a
    /// deterministic function of `(shape, epoch state)`, so the replay is
    /// exact). A memo miss evaluates its probes lazily (inner search
    /// threading of 1) so the memoized probe count stays canonical for every
    /// caller; `threads` is accepted for signature stability and does not
    /// change the answer.
    pub fn place(&self, request: &OrchestrationRequest, threads: usize) -> Result<PlacementScheme> {
        let _ = threads;
        request.validate()?;
        let snapshot = self.store.load();
        let memo_key = (request.k, request.nodes_per_group, request.job_nodes);
        {
            let cache = self.cache.lock().expect("no scratch builder panicked");
            if cache.epoch == snapshot.epoch {
                if let Some((outcome, _)) = cache.place_memo.get(&memo_key) {
                    return outcome.clone();
                }
            }
        }
        let keys = BTreeSet::from([(request.k, request.nodes_per_group)]);
        let (scratches, _) = self.shared_scratches(&snapshot, &keys, 1);
        let scratch = &scratches[&(request.k, request.nodes_per_group)];
        let (outcome, probes) = snapshot
            .value
            .orchestrator()
            .orchestrate_with_scratch(request, scratch, 1);
        let mut cache = self.cache.lock().expect("no scratch builder panicked");
        if cache.epoch == snapshot.epoch {
            cache.place_memo.insert(memo_key, (outcome.clone(), probes));
        }
        drop(cache);
        outcome
    }

    /// Answers a batch of queries against **one** pinned snapshot, fanning
    /// the per-query work over up to `threads` scoped threads. Shared-state
    /// queries (`Place`, `MaxJob`) amortise one memoized scratch per
    /// `(k, nodes_per_group)` key, and each *distinct shape* is searched at
    /// most once per epoch: repeats — within the batch or across batches of
    /// one epoch — replay the memoized `(answer, probes)` pair, which is
    /// exact because both are deterministic functions of the shape and the
    /// epoch's scratch. What-if overlays build a private scratch against
    /// their merged fault set (patched from the batch's shared scratch of
    /// the same key when present). Answers, order and cost counters are
    /// byte-identical for any thread count.
    pub fn answer_batch(&self, queries: &[PlacementQuery], threads: usize) -> BatchReport {
        let snapshot = self.store.load();

        // Which shared scratch keys the batch needs, derived from the batch
        // alone (invalid requests answer without a scratch, what-ifs build
        // privately).
        let mut keys: BTreeSet<ScratchKey> = BTreeSet::new();
        for query in queries {
            match query {
                PlacementQuery::Place(request) => {
                    if request.validate().is_ok() {
                        keys.insert((request.k, request.nodes_per_group));
                    }
                }
                PlacementQuery::MaxJob { nodes_per_group, k } => {
                    if *nodes_per_group > 0 && *k > 0 {
                        keys.insert((*k, *nodes_per_group));
                    }
                }
                PlacementQuery::WhatIf { .. } => {}
            }
        }
        let (scratches, shared_scratch_builds) = self.shared_scratches(&snapshot, &keys, threads);

        // The distinct shared-state shapes of this batch, resolved once each:
        // from the epoch's memo where already answered, computed (and
        // memoized) otherwise.
        let mut items: BTreeSet<WorkItem> = BTreeSet::new();
        for query in queries {
            match query {
                PlacementQuery::Place(request) if request.validate().is_ok() => {
                    items.insert(WorkItem::Place(
                        request.k,
                        request.nodes_per_group,
                        request.job_nodes,
                    ));
                }
                PlacementQuery::MaxJob { nodes_per_group, k } if *nodes_per_group > 0 && *k > 0 => {
                    items.insert(WorkItem::MaxJob(*k, *nodes_per_group));
                }
                _ => {}
            }
        }
        let mut resolved: BTreeMap<WorkItem, (PlacementAnswer, usize)> = BTreeMap::new();
        let mut misses: Vec<WorkItem> = Vec::new();
        {
            let cache = self.cache.lock().expect("no scratch builder panicked");
            // A batch on a stale snapshot must not read the (newer) memo.
            let live = cache.epoch == snapshot.epoch;
            for &item in &items {
                let hit = match item {
                    WorkItem::Place(k, m, j) if live => {
                        cache.place_memo.get(&(k, m, j)).map(|(outcome, probes)| {
                            (PlacementAnswer::Placement(outcome.clone()), *probes)
                        })
                    }
                    WorkItem::MaxJob(k, m) if live => {
                        cache.max_job_memo.get(&(k, m)).map(|&(job_nodes, probes)| {
                            (PlacementAnswer::MaxJob { job_nodes }, probes)
                        })
                    }
                    _ => None,
                };
                match hit {
                    Some(value) => {
                        resolved.insert(item, value);
                    }
                    None => misses.push(item),
                }
            }
        }
        let computed = par_map(threads, &misses, |_, &item| {
            let orchestrator = snapshot.value.orchestrator();
            match item {
                WorkItem::Place(k, nodes_per_group, job_nodes) => {
                    let request = OrchestrationRequest {
                        job_nodes,
                        nodes_per_group,
                        k,
                    };
                    let scratch = &scratches[&(k, nodes_per_group)];
                    let (outcome, probes) =
                        orchestrator.orchestrate_with_scratch(&request, scratch, 1);
                    (PlacementAnswer::Placement(outcome), probes)
                }
                WorkItem::MaxJob(k, nodes_per_group) => {
                    let scratch = &scratches[&(k, nodes_per_group)];
                    let report = max_job_with_scratch(orchestrator, nodes_per_group, k, scratch);
                    (
                        PlacementAnswer::MaxJob {
                            job_nodes: report.job_nodes,
                        },
                        report.probes,
                    )
                }
            }
        });
        if !misses.is_empty() {
            let mut cache = self.cache.lock().expect("no scratch builder panicked");
            if cache.epoch == snapshot.epoch {
                for (item, (answer, probes)) in misses.iter().zip(&computed) {
                    match (item, answer) {
                        (WorkItem::Place(k, m, j), PlacementAnswer::Placement(outcome)) => {
                            cache
                                .place_memo
                                .insert((*k, *m, *j), (outcome.clone(), *probes));
                        }
                        (WorkItem::MaxJob(k, m), PlacementAnswer::MaxJob { job_nodes }) => {
                            cache.max_job_memo.insert((*k, *m), (*job_nodes, *probes));
                        }
                        _ => unreachable!("work items answer in kind"),
                    }
                }
            }
        }
        resolved.extend(misses.into_iter().zip(computed));

        let outcomes = par_map(threads, queries, |_, query| {
            self.answer_one(query, &snapshot, &scratches, &resolved)
        });

        let mut answers = Vec::with_capacity(outcomes.len());
        let mut costs = Vec::with_capacity(outcomes.len());
        let mut stats = BatchStats {
            queries: queries.len(),
            shared_scratch_builds,
            ..BatchStats::default()
        };
        for (query, (answer, cost)) in queries.iter().zip(outcomes) {
            stats.probes += cost.probes;
            stats.private_scratch_builds += usize::from(cost.private_scratch);
            match query {
                PlacementQuery::Place(request) => {
                    if request.validate().is_ok() {
                        stats.shared_scratch_reuses += 1;
                    } else {
                        stats.rejected += 1;
                    }
                }
                PlacementQuery::MaxJob { nodes_per_group, k } => {
                    // Degenerate geometries answer `job_nodes: 0` via the
                    // oracle path without a shared scratch; they are neither
                    // reuses nor rejections.
                    stats.shared_scratch_reuses += usize::from(*nodes_per_group > 0 && *k > 0);
                }
                PlacementQuery::WhatIf { request, .. } => {
                    stats.rejected += usize::from(request.validate().is_err());
                }
            }
            answers.push(answer);
            costs.push(cost);
        }
        // Of the shared-scratch queries, the ones whose key had to be built
        // this batch are builds, the rest amortised an existing scratch.
        stats.shared_scratch_reuses = stats
            .shared_scratch_reuses
            .saturating_sub(stats.shared_scratch_builds);

        BatchReport {
            epoch: snapshot.epoch,
            answers,
            costs,
            stats,
        }
    }

    /// Answers one query of a batch. Shared-state queries replay the batch's
    /// `resolved` map (each distinct shape was answered exactly once, with
    /// inner search threading of 1, so probe counts are exact and thread-
    /// count-invariant); what-if overlays search privately, patching their
    /// scratch from the batch's shared scratch of the same key when one
    /// exists (bit-exact per the patch-vs-rebuild property suite, so the
    /// cheaper materialization never changes an answer or a probe count).
    fn answer_one(
        &self,
        query: &PlacementQuery,
        snapshot: &Versioned<ClusterSnapshot>,
        scratches: &BTreeMap<ScratchKey, Arc<SearchScratch>>,
        resolved: &BTreeMap<WorkItem, (PlacementAnswer, usize)>,
    ) -> (PlacementAnswer, QueryCost) {
        let orchestrator = snapshot.value.orchestrator();
        let faults = snapshot.value.faults();
        match query {
            PlacementQuery::Place(request) => {
                if let Err(error) = request.validate() {
                    return (
                        PlacementAnswer::Placement(Err(error)),
                        QueryCost {
                            kind: QueryKind::Place,
                            probes: 0,
                            private_scratch: false,
                        },
                    );
                }
                let item = WorkItem::Place(request.k, request.nodes_per_group, request.job_nodes);
                let (answer, probes) = resolved[&item].clone();
                (
                    answer,
                    QueryCost {
                        kind: QueryKind::Place,
                        probes,
                        private_scratch: false,
                    },
                )
            }
            PlacementQuery::MaxJob { nodes_per_group, k } => {
                if *nodes_per_group > 0 && *k > 0 {
                    let (answer, probes) =
                        resolved[&WorkItem::MaxJob(*k, *nodes_per_group)].clone();
                    return (
                        answer,
                        QueryCost {
                            kind: QueryKind::MaxJob,
                            probes,
                            private_scratch: false,
                        },
                    );
                }
                // Degenerate geometry: the oracle path rejects every probe
                // itself.
                let report = max_orchestratable_job(orchestrator, *nodes_per_group, *k, faults, 1);
                (
                    PlacementAnswer::MaxJob {
                        job_nodes: report.job_nodes,
                    },
                    QueryCost {
                        kind: QueryKind::MaxJob,
                        probes: report.probes,
                        private_scratch: false,
                    },
                )
            }
            PlacementQuery::WhatIf {
                request,
                extra_faults,
            } => {
                if let Err(error) = request.validate() {
                    return (
                        PlacementAnswer::Placement(Err(error)),
                        QueryCost {
                            kind: QueryKind::WhatIf,
                            probes: 0,
                            private_scratch: false,
                        },
                    );
                }
                let merged = faults.union(extra_faults);
                let scratch = match scratches.get(&(request.k, request.nodes_per_group)) {
                    Some(base) => orchestrator.patch_scratch(request, base, &merged).0,
                    None => orchestrator.search_scratch(request, &merged),
                };
                let (outcome, probes) = orchestrator.orchestrate_with_scratch(request, &scratch, 1);
                (
                    PlacementAnswer::Placement(outcome),
                    QueryCost {
                        kind: QueryKind::WhatIf,
                        probes,
                        private_scratch: true,
                    },
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbd_types::NodeId;
    use topology::FatTree;

    fn store_with(faults: FaultSet) -> Arc<SnapshotStore> {
        let orch = Arc::new(FatTreeOrchestrator::new(FatTree::new(512, 16, 8).unwrap()).unwrap());
        Arc::new(SnapshotStore::new(orch, faults))
    }

    fn request(job_nodes: usize) -> OrchestrationRequest {
        OrchestrationRequest {
            job_nodes,
            nodes_per_group: 8,
            k: 2,
        }
    }

    #[test]
    fn store_publish_swaps_faults_and_keeps_the_orchestrator() {
        let store = store_with(FaultSet::new());
        assert_eq!(store.epoch(), 0);
        let faults = FaultSet::from_nodes([NodeId(3)]);
        assert_eq!(store.publish(faults.clone()), 1);
        let snapshot = store.load();
        assert_eq!(snapshot.epoch, 1);
        assert_eq!(snapshot.value.faults(), &faults);
        assert_eq!(snapshot.value.orchestrator().fat_tree().nodes(), 512);
    }

    #[test]
    fn place_matches_the_oracle_and_reuses_the_epoch_scratch() {
        let faults = FaultSet::from_nodes((0..12).map(|i| NodeId(i * 31)));
        let store = store_with(faults.clone());
        let service = PlacementService::new(Arc::clone(&store));
        let orch = store.load().value.orchestrator().clone();
        for job_nodes in [64usize, 256, 480, 1000] {
            let req = request(job_nodes);
            assert_eq!(
                service.place(&req, 1),
                orch.orchestrate_par(&req, &faults, 1),
                "job_nodes {job_nodes}"
            );
        }
        // Consecutive places against one epoch share the cached scratch: a
        // follow-up batch reports zero builds for the same key.
        let report = service.answer_batch(&[PlacementQuery::Place(request(64))], 1);
        assert_eq!(report.stats.shared_scratch_builds, 0);
        assert_eq!(report.stats.shared_scratch_reuses, 1);
    }

    #[test]
    fn batch_answers_every_query_kind_against_one_epoch() {
        let faults = FaultSet::from_nodes((0..20).map(|i| NodeId(i * 17)));
        let store = store_with(faults.clone());
        let service = PlacementService::new(Arc::clone(&store));
        let orch = store.load().value.orchestrator().clone();
        let extra = FaultSet::from_nodes((0..64).map(NodeId));
        let queries = vec![
            PlacementQuery::Place(request(256)),
            PlacementQuery::MaxJob {
                nodes_per_group: 8,
                k: 2,
            },
            PlacementQuery::WhatIf {
                request: request(256),
                extra_faults: extra.clone(),
            },
            PlacementQuery::Place(OrchestrationRequest {
                job_nodes: 0,
                nodes_per_group: 8,
                k: 2,
            }),
        ];
        let report = service.answer_batch(&queries, 2);
        assert_eq!(report.epoch, 0);
        assert_eq!(report.answers.len(), 4);
        assert_eq!(
            report.answers[0],
            PlacementAnswer::Placement(orch.orchestrate_par(&request(256), &faults, 1))
        );
        assert_eq!(
            report.answers[1],
            PlacementAnswer::MaxJob {
                job_nodes: max_orchestratable_job(&orch, 8, 2, &faults, 1).job_nodes
            }
        );
        assert_eq!(
            report.answers[2],
            PlacementAnswer::Placement(orchestrate_whatif(&orch, &request(256), &faults, &extra))
        );
        assert!(matches!(
            &report.answers[3],
            PlacementAnswer::Placement(Err(_))
        ));
        assert_eq!(report.stats.queries, 4);
        assert_eq!(report.stats.rejected, 1);
        // Place + MaxJob share one (k=2, m=8) scratch; the what-if builds its
        // own.
        assert_eq!(report.stats.shared_scratch_builds, 1);
        assert_eq!(report.stats.shared_scratch_reuses, 1);
        assert_eq!(report.stats.private_scratch_builds, 1);
        assert!(report.stats.probes > 0);
    }

    fn orchestrate_whatif(
        orch: &FatTreeOrchestrator,
        request: &OrchestrationRequest,
        faults: &FaultSet,
        extra: &FaultSet,
    ) -> Result<PlacementScheme> {
        orch.orchestrate_par(request, &faults.union(extra), 1)
    }

    #[test]
    fn batch_reports_are_thread_count_invariant() {
        let faults = FaultSet::from_nodes((0..30).map(|i| NodeId(i * 13)));
        let store = store_with(faults);
        let queries: Vec<PlacementQuery> = (1..=12)
            .map(|i| PlacementQuery::Place(request(i * 40)))
            .chain([PlacementQuery::MaxJob {
                nodes_per_group: 16,
                k: 2,
            }])
            .collect();
        // Fresh service per thread count so the scratch cache starts cold in
        // both runs and the build counters are comparable.
        let seq = PlacementService::new(Arc::clone(&store)).answer_batch(&queries, 1);
        let par = PlacementService::new(Arc::clone(&store)).answer_batch(&queries, 4);
        assert_eq!(seq, par);
    }

    #[test]
    fn publishing_a_new_epoch_invalidates_the_scratch_cache() {
        let store = store_with(FaultSet::new());
        let service = PlacementService::new(Arc::clone(&store));
        let queries = vec![PlacementQuery::Place(request(64))];
        let first = service.answer_batch(&queries, 1);
        assert_eq!((first.epoch, first.stats.shared_scratch_builds), (0, 1));
        let warm = service.answer_batch(&queries, 1);
        assert_eq!((warm.epoch, warm.stats.shared_scratch_builds), (0, 0));
        store.publish(FaultSet::from_nodes([NodeId(9)]));
        let cold = service.answer_batch(&queries, 1);
        assert_eq!((cold.epoch, cold.stats.shared_scratch_builds), (1, 1));
        // The new answer reflects the new fault state: node 9 is out.
        let PlacementAnswer::Placement(Ok(scheme)) = &cold.answers[0] else {
            panic!("one faulty node cannot make a 64-node job infeasible");
        };
        assert!(scheme.groups.iter().all(|g| !g.nodes.contains(&NodeId(9))));
    }

    #[test]
    fn what_if_overlays_do_not_leak_into_the_snapshot() {
        let store = store_with(FaultSet::new());
        let service = PlacementService::new(Arc::clone(&store));
        let extra = FaultSet::from_nodes((0..128).map(NodeId));
        let whatif = service.answer_batch(
            &[PlacementQuery::WhatIf {
                request: request(64),
                extra_faults: extra,
            }],
            1,
        );
        let after = service.answer_batch(&[PlacementQuery::Place(request(64))], 1);
        // The snapshot is still fault-free: the plain place may use the nodes
        // the what-if pretended to fail.
        let PlacementAnswer::Placement(Ok(scheme)) = &after.answers[0] else {
            panic!("healthy cluster must place");
        };
        assert!(scheme.groups.iter().any(|g| g.nodes[0].index() < 128));
        assert_eq!(whatif.stats.private_scratch_builds, 1);
        assert_eq!(store.epoch(), 0);
    }
}
