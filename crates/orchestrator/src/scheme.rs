//! The placement-scheme data model.
//!
//! The orchestrator's output is an ordered list of **TP groups**, each an
//! ordered list of nodes. Order carries meaning twice over:
//!
//! * within a group, position is the node's TP rank (adjacent positions are
//!   HBD ring neighbours);
//! * across groups, position is the group's DP/CP rank — group `g` exchanges
//!   DP/CP/PP traffic with groups `g − 1` and `g + 1`, which is what the
//!   cross-ToR accounting in [`crate::traffic`] measures.

use hbd_types::{HbdError, NodeId, Result};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// One TP group: an ordered run of nodes forming a GPU ring.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TpGroup {
    /// The member nodes, in TP-rank order.
    pub nodes: Vec<NodeId>,
}

impl TpGroup {
    /// Creates a group from its member nodes.
    pub fn new(nodes: Vec<NodeId>) -> Self {
        TpGroup { nodes }
    }

    /// Number of member nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the group has no members.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The node holding TP rank `rank` (by node position).
    pub fn node_at(&self, rank: usize) -> Option<NodeId> {
        self.nodes.get(rank).copied()
    }
}

/// A complete placement scheme: the ordered TP groups selected for a job.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlacementScheme {
    /// The TP groups, in DP-rank order.
    pub groups: Vec<TpGroup>,
}

impl PlacementScheme {
    /// Creates an empty scheme.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a scheme from groups.
    pub fn from_groups(groups: Vec<TpGroup>) -> Self {
        PlacementScheme { groups }
    }

    /// Number of TP groups.
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// Whether the scheme has no groups.
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// Total nodes placed.
    pub fn nodes_placed(&self) -> usize {
        self.groups.iter().map(|g| g.len()).sum()
    }

    /// Total GPUs placed, given the node size.
    pub fn gpus_placed(&self, gpus_per_node: usize) -> usize {
        self.nodes_placed() * gpus_per_node
    }

    /// Appends a group.
    pub fn push(&mut self, group: TpGroup) {
        self.groups.push(group);
    }

    /// Appends every group of another scheme.
    pub fn extend(&mut self, other: PlacementScheme) {
        self.groups.extend(other.groups);
    }

    /// Validates the scheme: every group must have exactly `nodes_per_group`
    /// members, no node may appear twice, and no placed node may be faulty.
    pub fn validate(&self, nodes_per_group: usize, faulty: &BTreeSet<NodeId>) -> Result<()> {
        let mut seen = BTreeSet::new();
        for (i, group) in self.groups.iter().enumerate() {
            if group.len() != nodes_per_group {
                return Err(HbdError::invalid_config(format!(
                    "group {i} has {} nodes, expected {nodes_per_group}",
                    group.len()
                )));
            }
            for &node in &group.nodes {
                if faulty.contains(&node) {
                    return Err(HbdError::invalid_config(format!(
                        "group {i} places faulty node {node}"
                    )));
                }
                if !seen.insert(node) {
                    return Err(HbdError::invalid_config(format!(
                        "node {node} is placed more than once"
                    )));
                }
            }
        }
        Ok(())
    }

    /// Whether the scheme provides at least `job_nodes` nodes.
    pub fn satisfies(&self, job_nodes: usize) -> bool {
        self.nodes_placed() >= job_nodes
    }

    /// Keeps only the first `job_groups` groups (the job does not need more).
    pub fn truncate(&mut self, job_groups: usize) {
        self.groups.truncate(job_groups);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn group(ids: &[usize]) -> TpGroup {
        TpGroup::new(ids.iter().map(|&i| NodeId(i)).collect())
    }

    #[test]
    fn counting_and_ranks() {
        let scheme = PlacementScheme::from_groups(vec![group(&[0, 1]), group(&[2, 3])]);
        assert_eq!(scheme.len(), 2);
        assert_eq!(scheme.nodes_placed(), 4);
        assert_eq!(scheme.gpus_placed(4), 16);
        assert_eq!(scheme.groups[0].node_at(1), Some(NodeId(1)));
        assert_eq!(scheme.groups[0].node_at(2), None);
        assert!(scheme.satisfies(4));
        assert!(!scheme.satisfies(5));
    }

    #[test]
    fn validation_catches_wrong_group_size() {
        let scheme = PlacementScheme::from_groups(vec![group(&[0, 1, 2])]);
        assert!(scheme.validate(2, &BTreeSet::new()).is_err());
        assert!(scheme.validate(3, &BTreeSet::new()).is_ok());
    }

    #[test]
    fn validation_catches_duplicates_and_faulty_nodes() {
        let scheme = PlacementScheme::from_groups(vec![group(&[0, 1]), group(&[1, 2])]);
        assert!(scheme.validate(2, &BTreeSet::new()).is_err());
        let scheme = PlacementScheme::from_groups(vec![group(&[0, 1])]);
        let faulty: BTreeSet<NodeId> = [NodeId(1)].into_iter().collect();
        assert!(scheme.validate(2, &faulty).is_err());
    }

    #[test]
    fn truncate_and_extend() {
        let mut scheme = PlacementScheme::from_groups(vec![group(&[0]), group(&[1]), group(&[2])]);
        scheme.truncate(2);
        assert_eq!(scheme.len(), 2);
        let mut other = PlacementScheme::new();
        assert!(other.is_empty());
        other.push(group(&[5]));
        scheme.extend(other);
        assert_eq!(scheme.len(), 3);
        assert_eq!(scheme.groups[2], group(&[5]));
    }
}
