//! Admission control in front of [`PlacementService::answer_batch`]: a
//! bounded modeled-time queue with per-query deadlines and load-shedding
//! policies.
//!
//! The throughput experiment's open-loop queue is infinitely patient: past
//! saturation its backlog — and therefore its p99 sojourn — grows without
//! bound. [`AdmissionController`] replaces that queue with an operational
//! one. Every query arrives as a [`Ticket`] carrying an absolute modeled
//! deadline and a priority class; the controller keeps at most
//! `capacity` tickets queued, forms batches exactly like the open-loop
//! model (whatever has arrived by the time the server frees up, capped at
//! `batch_cap`), prices them with the shared [`ModeledLatency`] lane model,
//! and **sheds** instead of queueing unboundedly. Shed queries get a typed
//! [`ShedQuery`] outcome whose `retry_after_us` is a deterministic
//! saturation signal derived from the modeled backlog — the contract the
//! retrying client (`crate::client`) honours with seeded backoff.
//!
//! Two guarantees hold by construction and are pinned by the
//! `admission_oracle` property suite:
//!
//! * **No answer is ever returned past its deadline.** Tickets already
//!   expired when their batch would start are shed at the queue; a ticket
//!   whose *modeled completion* overruns its deadline is shed at completion
//!   (the work was spent — deterministically — but the stale answer is
//!   withheld).
//! * **Conservation:** every offered ticket is eventually answered or shed,
//!   exactly once — `offered == answered + shed + backlog` at all times.
//!
//! Everything runs in modeled microseconds; determinism and thread-count
//! invariance follow from the service's own guarantees (answers and cost
//! counters are byte-identical for any `threads`) plus the fact that no
//! wall-clock ever enters the model.

use crate::service::{ModeledLatency, PlacementAnswer, PlacementQuery, PlacementService};
use std::collections::VecDeque;

/// What to do with an arriving ticket when the queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedPolicy {
    /// Shed the arriving ticket (classic bounded FIFO).
    RejectNewest,
    /// Shed the ticket with the **earliest deadline** among queued ∪
    /// {arriving} — the one least likely to be answered in time anyway
    /// (ties broken toward the newer ticket).
    DeadlineAware,
    /// Shed the ticket with the **lowest priority** (numerically largest
    /// class) among queued ∪ {arriving}, ties broken toward the newer
    /// ticket.
    PriorityClass,
}

/// Configuration of an [`AdmissionController`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionConfig {
    /// Maximum queued tickets; an arrival beyond it triggers the policy.
    /// `usize::MAX` reproduces the unbounded open-loop queue.
    pub capacity: usize,
    /// Maximum tickets answered as one service batch.
    pub batch_cap: usize,
    /// The shedding policy.
    pub policy: ShedPolicy,
}

/// One admitted-or-shed unit of work: a query plus its arrival instant,
/// absolute deadline and priority class, all in modeled time.
#[derive(Debug, Clone)]
pub struct Ticket {
    /// Caller-chosen identifier, echoed in the disposition.
    pub id: u64,
    /// The query itself.
    pub query: PlacementQuery,
    /// Arrival instant (modeled µs). Offers must be time-ordered.
    pub arrival_us: f64,
    /// Absolute deadline (modeled µs); `f64::INFINITY` for none. A ticket
    /// whose deadline is not strictly after its arrival is shed on arrival.
    pub deadline_us: f64,
    /// Priority class, 0 = most important (only [`ShedPolicy::PriorityClass`]
    /// reads it).
    pub class: u8,
}

/// Why a ticket was shed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// The queue was full and the policy rejected the arriving ticket.
    QueueFull,
    /// The queue was full and the policy evicted this queued ticket in
    /// favour of a newer arrival.
    Displaced,
    /// The ticket's deadline passed before (or during) service.
    DeadlineExpired,
}

/// A query that was answered within its deadline.
#[derive(Debug, Clone)]
pub struct AnsweredQuery {
    /// The ticket id.
    pub id: u64,
    /// The answer, bit-identical to what an unqueued
    /// [`PlacementService::answer_batch`] call would have produced against
    /// the same epoch.
    pub answer: PlacementAnswer,
    /// When the ticket's batch started service (modeled µs).
    pub started_us: f64,
    /// When the ticket's batch completed (modeled µs); `<= deadline_us`.
    pub completed_us: f64,
    /// `completed_us - arrival_us`.
    pub sojourn_us: f64,
    /// The snapshot epoch the answer was computed against.
    pub epoch: u64,
}

/// A query that was shed. `Rejected { retry_after }` in the issue's terms:
/// the caller should not come back before `retry_after_us` has elapsed.
#[derive(Debug, Clone, Copy)]
pub struct ShedQuery {
    /// The ticket id.
    pub id: u64,
    /// When the shed happened (modeled µs): arrival for queue-full and
    /// displacement sheds, batch start or completion for deadline sheds.
    pub at_us: f64,
    /// Why.
    pub reason: ShedReason,
    /// Deterministic saturation signal: the modeled backlog-drain horizon at
    /// the shed instant. Retrying earlier than `at_us + retry_after_us` is
    /// likely to be shed again.
    pub retry_after_us: f64,
}

/// The final outcome of one offered ticket.
#[derive(Debug, Clone)]
pub enum Disposition {
    /// Answered within deadline.
    Answered(AnsweredQuery),
    /// Shed (never answered).
    Shed(ShedQuery),
}

impl Disposition {
    /// The ticket id this disposition resolves.
    pub fn id(&self) -> u64 {
        match self {
            Disposition::Answered(a) => a.id,
            Disposition::Shed(s) => s.id,
        }
    }
}

/// Running counters of one [`AdmissionController`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdmissionStats {
    /// Tickets offered.
    pub offered: u64,
    /// Tickets answered within deadline.
    pub answered: u64,
    /// Arriving tickets shed because the queue was full.
    pub shed_queue_full: u64,
    /// Queued tickets displaced by the policy.
    pub shed_displaced: u64,
    /// Tickets shed because their deadline passed.
    pub shed_deadline: u64,
    /// Service batches formed.
    pub batches: u64,
    /// Largest queue depth observed right after an admission.
    pub max_backlog: usize,
}

impl AdmissionStats {
    /// Total sheds across all reasons.
    pub fn shed(&self) -> u64 {
        self.shed_queue_full + self.shed_displaced + self.shed_deadline
    }
}

/// The bounded modeled-time admission queue in front of a
/// [`PlacementService`]. See the module docs for the protocol; drive it with
/// time-ordered [`offer`](Self::offer) calls interleaved with
/// [`run_until`](Self::run_until), then [`drain`](Self::drain).
#[derive(Debug)]
pub struct AdmissionController {
    config: AdmissionConfig,
    model: ModeledLatency,
    pending: VecDeque<Ticket>,
    free_at_us: f64,
    /// EWMA of the modeled per-query service time, seeded with a one-search
    /// prior so `retry_after` is meaningful before the first batch.
    ewma_query_us: f64,
    stats: AdmissionStats,
}

impl AdmissionController {
    /// A controller with an empty queue and an idle modeled server.
    pub fn new(config: AdmissionConfig, model: ModeledLatency) -> Self {
        let prior = model.query_overhead_us + model.search_us;
        AdmissionController {
            config,
            model,
            pending: VecDeque::new(),
            free_at_us: 0.0,
            ewma_query_us: prior,
            stats: AdmissionStats::default(),
        }
    }

    /// Running counters.
    pub fn stats(&self) -> AdmissionStats {
        self.stats
    }

    /// Tickets currently queued (offered, not yet answered or shed).
    pub fn backlog(&self) -> usize {
        self.pending.len()
    }

    /// When the modeled server frees up (µs).
    pub fn free_at_us(&self) -> f64 {
        self.free_at_us
    }

    /// The cost model this controller prices batches with.
    pub fn model(&self) -> &ModeledLatency {
        &self.model
    }

    /// The saturation signal at modeled time `now_us`: how long the modeled
    /// backlog (the busy server plus every queued ticket at the EWMA
    /// per-query service time, divided over the modeled lanes) needs to
    /// drain. Deterministic in the controller state.
    pub fn retry_after_us(&self, now_us: f64) -> f64 {
        let busy = (self.free_at_us - now_us).max(0.0);
        let queued =
            (self.pending.len() as f64 + 1.0) * self.ewma_query_us / self.model.lanes.max(1) as f64;
        busy + queued
    }

    /// Offers one ticket at its arrival instant. Appends any resulting shed
    /// dispositions (the arriving ticket, or a displaced queued one) to
    /// `out`; an admitted ticket produces its disposition later, from
    /// [`run_until`](Self::run_until) / [`drain`](Self::drain). Offers must
    /// be nondecreasing in `arrival_us`; callers interleave
    /// `run_until(ticket.arrival_us)` before the offer so the queue state is
    /// current.
    pub fn offer(&mut self, ticket: Ticket, out: &mut Vec<Disposition>) {
        self.stats.offered += 1;
        let now = ticket.arrival_us;
        // A deadline at (or before) arrival can never be met: the modeled
        // service time is strictly positive. Shed immediately.
        if ticket.deadline_us <= now {
            self.shed(ticket.id, now, ShedReason::DeadlineExpired, now, out);
            return;
        }
        if self.pending.len() < self.config.capacity {
            self.admit(ticket);
            return;
        }
        // Queue full: the policy picks one victim among queued ∪ {arriving}.
        // `None` means the arriving ticket itself loses.
        let victim = match self.config.policy {
            ShedPolicy::RejectNewest => None,
            ShedPolicy::DeadlineAware => {
                // Earliest deadline loses; on a tie the newer (larger-id)
                // ticket loses. The arriving ticket participates with its
                // own key, so a queued ticket is only displaced when it is
                // strictly a worse bet than the arrival.
                let mut victim: Option<usize> = None;
                let mut key = (ticket.deadline_us, std::cmp::Reverse(ticket.id));
                for (idx, t) in self.pending.iter().enumerate() {
                    let candidate = (t.deadline_us, std::cmp::Reverse(t.id));
                    if candidate < key {
                        key = candidate;
                        victim = Some(idx);
                    }
                }
                victim
            }
            ShedPolicy::PriorityClass => {
                // Largest class (lowest priority) loses; on a tie the newer
                // ticket loses.
                let mut victim: Option<usize> = None;
                let mut key = (ticket.class, ticket.id);
                for (idx, t) in self.pending.iter().enumerate() {
                    let candidate = (t.class, t.id);
                    if candidate > key {
                        key = candidate;
                        victim = Some(idx);
                    }
                }
                victim
            }
        };
        match victim {
            Some(idx) => {
                let evicted = self.pending.remove(idx).expect("victim index in range");
                self.shed(evicted.id, now, ShedReason::Displaced, now, out);
                self.admit(ticket);
            }
            None => {
                self.shed(ticket.id, now, ShedReason::QueueFull, now, out);
            }
        }
    }

    fn admit(&mut self, ticket: Ticket) {
        self.pending.push_back(ticket);
        self.stats.max_backlog = self.stats.max_backlog.max(self.pending.len());
    }

    fn shed(
        &mut self,
        id: u64,
        at_us: f64,
        reason: ShedReason,
        signal_at_us: f64,
        out: &mut Vec<Disposition>,
    ) {
        match reason {
            ShedReason::QueueFull => self.stats.shed_queue_full += 1,
            ShedReason::Displaced => self.stats.shed_displaced += 1,
            ShedReason::DeadlineExpired => self.stats.shed_deadline += 1,
        }
        out.push(Disposition::Shed(ShedQuery {
            id,
            at_us,
            reason,
            retry_after_us: self.retry_after_us(signal_at_us),
        }));
    }

    /// Serves every batch whose modeled start instant is **before**
    /// `now_us`, appending the resulting dispositions to `out`. Batches form
    /// exactly like the open-loop model: the server takes whatever is queued
    /// when it frees up (tickets whose deadline already passed are shed at
    /// the queue), up to `batch_cap`, answers it as one
    /// [`PlacementService::answer_batch`] call and charges the modeled batch
    /// service time.
    pub fn run_until(
        &mut self,
        service: &PlacementService,
        now_us: f64,
        threads: usize,
        out: &mut Vec<Disposition>,
    ) {
        while let Some(front) = self.pending.front() {
            let start = self.free_at_us.max(front.arrival_us);
            if start >= now_us {
                break;
            }
            self.serve_one_batch(service, start, threads, out);
        }
    }

    /// Serves every remaining queued ticket (the end-of-stream flush),
    /// appending the dispositions to `out`.
    pub fn drain(
        &mut self,
        service: &PlacementService,
        threads: usize,
        out: &mut Vec<Disposition>,
    ) {
        while let Some(front) = self.pending.front() {
            let start = self.free_at_us.max(front.arrival_us);
            self.serve_one_batch(service, start, threads, out);
        }
    }

    fn serve_one_batch(
        &mut self,
        service: &PlacementService,
        start: f64,
        threads: usize,
        out: &mut Vec<Disposition>,
    ) {
        // Pop the batch: everything already arrived by `start`, up to the
        // cap; tickets expired at the start instant are shed, not served.
        let mut batch: Vec<Ticket> = Vec::new();
        while batch.len() < self.config.batch_cap {
            let Some(front) = self.pending.front() else {
                break;
            };
            if front.arrival_us > start {
                break;
            }
            let ticket = self.pending.pop_front().expect("front exists");
            if ticket.deadline_us <= start {
                self.shed(ticket.id, start, ShedReason::DeadlineExpired, start, out);
            } else {
                batch.push(ticket);
            }
        }
        if batch.is_empty() {
            // Every candidate was expired; the loop in the caller recomputes
            // the next start from the (shrunk) queue.
            return;
        }
        let queries: Vec<PlacementQuery> = batch.iter().map(|t| t.query.clone()).collect();
        let report = service.answer_batch(&queries, threads);
        let service_us = self.model.batch_service_us(&report);
        let done = start + service_us;
        self.stats.batches += 1;
        // EWMA of per-query modeled service, the retry_after signal.
        let mean = service_us / batch.len() as f64;
        self.ewma_query_us = if self.stats.batches == 1 {
            mean
        } else {
            0.8 * self.ewma_query_us + 0.2 * mean
        };
        for (ticket, answer) in batch.into_iter().zip(report.answers) {
            if done > ticket.deadline_us {
                // The work was spent, but the answer would be late: withhold
                // it. This is what makes "no answer past its deadline" an
                // invariant rather than a tendency.
                self.shed(ticket.id, done, ShedReason::DeadlineExpired, done, out);
            } else {
                self.stats.answered += 1;
                out.push(Disposition::Answered(AnsweredQuery {
                    id: ticket.id,
                    answer,
                    started_us: start,
                    completed_us: done,
                    sojourn_us: done - ticket.arrival_us,
                    epoch: report.epoch,
                }));
            }
        }
        self.free_at_us = done;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fat_tree::{FatTreeOrchestrator, OrchestrationRequest};
    use crate::service::SnapshotStore;
    use std::sync::Arc;
    use topology::{FatTree, FaultSet};

    fn service() -> PlacementService {
        let orch = Arc::new(FatTreeOrchestrator::new(FatTree::new(128, 16, 8).unwrap()).unwrap());
        PlacementService::new(Arc::new(SnapshotStore::new(orch, FaultSet::new())))
    }

    fn place(job_nodes: usize) -> PlacementQuery {
        PlacementQuery::Place(OrchestrationRequest {
            job_nodes,
            nodes_per_group: 8,
            k: 2,
        })
    }

    fn ticket(id: u64, arrival_us: f64, deadline_us: f64) -> Ticket {
        Ticket {
            id,
            query: place(32),
            arrival_us,
            deadline_us,
            class: 0,
        }
    }

    fn controller(capacity: usize, policy: ShedPolicy) -> AdmissionController {
        AdmissionController::new(
            AdmissionConfig {
                capacity,
                batch_cap: 4,
                policy,
            },
            ModeledLatency::for_cluster(128),
        )
    }

    fn sheds(out: &[Disposition]) -> Vec<(u64, ShedReason)> {
        out.iter()
            .filter_map(|d| match d {
                Disposition::Shed(s) => Some((s.id, s.reason)),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn unbounded_controller_answers_everything_within_infinite_deadlines() {
        let service = service();
        let mut ctl = controller(usize::MAX, ShedPolicy::RejectNewest);
        let mut out = Vec::new();
        for id in 0..6u64 {
            ctl.offer(ticket(id, id as f64 * 10.0, f64::INFINITY), &mut out);
        }
        assert!(out.is_empty(), "nothing sheds below capacity");
        ctl.drain(&service, 1, &mut out);
        let stats = ctl.stats();
        assert_eq!((stats.offered, stats.answered, stats.shed()), (6, 6, 0));
        // Conservation and ordering: every ticket resolves exactly once, and
        // the modeled completion is past its batch start.
        assert_eq!(out.len(), 6);
        for d in &out {
            let Disposition::Answered(a) = d else {
                panic!("expected an answer");
            };
            assert!(a.completed_us > a.started_us);
            assert!(a.sojourn_us >= 0.0);
        }
    }

    #[test]
    fn zero_capacity_queue_sheds_every_arrival_with_a_retry_hint() {
        let mut ctl = controller(0, ShedPolicy::RejectNewest);
        let mut out = Vec::new();
        for id in 0..3u64 {
            ctl.offer(ticket(id, id as f64, f64::INFINITY), &mut out);
        }
        assert_eq!(
            sheds(&out),
            vec![
                (0, ShedReason::QueueFull),
                (1, ShedReason::QueueFull),
                (2, ShedReason::QueueFull)
            ]
        );
        for d in &out {
            let Disposition::Shed(s) = d else {
                panic!("expected a shed");
            };
            assert!(s.retry_after_us > 0.0, "saturation signal must be positive");
        }
        assert_eq!(ctl.stats().shed_queue_full, 3);
        // A zero-capacity deadline-aware queue has no queued victim either.
        let mut ctl = controller(0, ShedPolicy::DeadlineAware);
        let mut out = Vec::new();
        ctl.offer(ticket(9, 0.0, f64::INFINITY), &mut out);
        assert_eq!(sheds(&out), vec![(9, ShedReason::QueueFull)]);
    }

    #[test]
    fn deadline_at_or_before_arrival_is_shed_immediately() {
        let mut ctl = controller(usize::MAX, ShedPolicy::RejectNewest);
        let mut out = Vec::new();
        ctl.offer(ticket(0, 100.0, 100.0), &mut out); // deadline == now
        ctl.offer(ticket(1, 100.0, 50.0), &mut out); // already past
        assert_eq!(
            sheds(&out),
            vec![
                (0, ShedReason::DeadlineExpired),
                (1, ShedReason::DeadlineExpired)
            ]
        );
        assert_eq!(ctl.backlog(), 0);
        assert_eq!(ctl.stats().shed_deadline, 2);
    }

    #[test]
    fn deadline_aware_policy_displaces_the_earliest_deadline() {
        let mut ctl = controller(1, ShedPolicy::DeadlineAware);
        let mut out = Vec::new();
        ctl.offer(ticket(0, 0.0, 500.0), &mut out);
        // Queue full; the queued ticket's deadline (500) is earlier than the
        // arrival's (900): the queued one is displaced.
        ctl.offer(ticket(1, 1.0, 900.0), &mut out);
        assert_eq!(sheds(&out), vec![(0, ShedReason::Displaced)]);
        // Queue full again; now the arrival (deadline 300) is the worst bet
        // and is rejected instead.
        ctl.offer(ticket(2, 2.0, 300.0), &mut out);
        assert_eq!(
            sheds(&out),
            vec![(0, ShedReason::Displaced), (2, ShedReason::QueueFull)]
        );
        assert_eq!(ctl.backlog(), 1);
    }

    #[test]
    fn priority_policy_sheds_the_lowest_priority_ticket() {
        let mut ctl = controller(1, ShedPolicy::PriorityClass);
        let mut out = Vec::new();
        ctl.offer(
            Ticket {
                class: 2,
                ..ticket(0, 0.0, f64::INFINITY)
            },
            &mut out,
        );
        // A more important arrival displaces the queued class-2 ticket.
        ctl.offer(
            Ticket {
                class: 0,
                ..ticket(1, 1.0, f64::INFINITY)
            },
            &mut out,
        );
        assert_eq!(sheds(&out), vec![(0, ShedReason::Displaced)]);
        // A less important arrival is rejected outright.
        ctl.offer(
            Ticket {
                class: 3,
                ..ticket(2, 2.0, f64::INFINITY)
            },
            &mut out,
        );
        assert_eq!(
            sheds(&out),
            vec![(0, ShedReason::Displaced), (2, ShedReason::QueueFull)]
        );
        // An equal-priority arrival loses the tie (newest sheds).
        ctl.offer(
            Ticket {
                class: 0,
                ..ticket(3, 3.0, f64::INFINITY)
            },
            &mut out,
        );
        assert_eq!(ctl.stats().shed_queue_full, 2);
    }

    #[test]
    fn no_answer_is_ever_returned_past_its_deadline() {
        let service = service();
        // One modeled batch of this single query takes overhead + probes *
        // probe_us > 5 µs; a 1 µs deadline cannot be met even though the
        // ticket is admitted (its deadline is after its arrival).
        let mut ctl = controller(usize::MAX, ShedPolicy::RejectNewest);
        let mut out = Vec::new();
        ctl.offer(ticket(0, 0.0, 1.0), &mut out);
        assert!(out.is_empty(), "admitted: the deadline is still ahead");
        ctl.drain(&service, 1, &mut out);
        assert_eq!(sheds(&out), vec![(0, ShedReason::DeadlineExpired)]);
        let stats = ctl.stats();
        assert_eq!((stats.answered, stats.shed_deadline), (0, 1));
        // A ticket whose deadline passes while it queues behind a long batch
        // is shed at its batch start, without spending service on it.
        let mut ctl = AdmissionController::new(
            AdmissionConfig {
                capacity: usize::MAX,
                batch_cap: 1,
                policy: ShedPolicy::RejectNewest,
            },
            ModeledLatency::for_cluster(128),
        );
        let mut out = Vec::new();
        ctl.offer(ticket(0, 0.0, f64::INFINITY), &mut out);
        ctl.offer(ticket(1, 1.0, 2.0), &mut out);
        ctl.offer(ticket(2, 1.5, f64::INFINITY), &mut out);
        ctl.drain(&service, 1, &mut out);
        assert_eq!(sheds(&out), vec![(1, ShedReason::DeadlineExpired)]);
        assert_eq!(ctl.stats().answered, 2);
    }

    #[test]
    fn batches_form_like_the_open_loop_model() {
        let service = service();
        let mut ctl = controller(usize::MAX, ShedPolicy::RejectNewest);
        let mut out = Vec::new();
        // Five tickets arrive while the server would still be busy with the
        // first: the second batch takes up to batch_cap (4) of them.
        for id in 0..5u64 {
            ctl.offer(ticket(id, id as f64 * 0.1, f64::INFINITY), &mut out);
        }
        ctl.drain(&service, 1, &mut out);
        let stats = ctl.stats();
        assert_eq!(stats.batches, 2);
        assert_eq!(stats.answered, 5);
        assert_eq!(stats.max_backlog, 5);
    }
}
