//! Cross-ToR traffic accounting — the metric of Fig 17a–c.
//!
//! For a placement scheme, the traffic of one training iteration splits into:
//!
//! * **TP traffic**, which rides the HBD and by construction never touches the
//!   DCN (InfiniteHBD GPUs "communicate without routing traffic, preventing
//!   congestion at any scale"), and
//! * **DP/CP/PP traffic**, exchanged between the same-rank nodes of
//!   DP-adjacent TP groups over the DCN. A pair whose two endpoints hang off
//!   different ToRs contributes *cross-ToR* traffic.
//!
//! The **cross-ToR rate** is cross-ToR volume over total volume (HBD + DCN).
//! Because TP dominates the per-GPU volume by roughly an order of magnitude,
//! a placement whose DP pairs all cross ToRs lands near 10 % — exactly where
//! the paper's greedy baseline sits — while a locality-aware placement drives
//! the rate toward zero.

use crate::scheme::PlacementScheme;
use serde::{Deserialize, Serialize};
use topology::FatTree;

/// Per-node, per-iteration traffic volumes (arbitrary but consistent units;
/// the cross-ToR *rate* only depends on their ratio).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrafficModel {
    /// TP (HBD) volume exchanged by one node per iteration.
    pub tp_volume_per_node: f64,
    /// DP/CP/PP (DCN) volume exchanged by one node with each DP neighbour per
    /// iteration.
    pub dp_volume_per_pair: f64,
}

impl TrafficModel {
    /// Volumes representative of a TP-32 Llama-scale job: the HBD carries
    /// roughly 9× the bytes that the DCN carries per node per iteration.
    pub fn paper_tp32() -> Self {
        TrafficModel {
            tp_volume_per_node: 450.0,
            dp_volume_per_pair: 50.0,
        }
    }
}

impl Default for TrafficModel {
    fn default() -> Self {
        Self::paper_tp32()
    }
}

/// Fraction of the scheme's total traffic that crosses a ToR switch.
///
/// DP pairs are formed between the node at rank `r` of group `g` and the node
/// at rank `r` of group `g + 1`, for every rank and every adjacent group pair
/// (the DP ring in placement order).
pub fn cross_tor_rate(scheme: &PlacementScheme, fat_tree: &FatTree, model: &TrafficModel) -> f64 {
    if scheme.is_empty() {
        return 0.0;
    }
    let tp_total = scheme.nodes_placed() as f64 * model.tp_volume_per_node;
    let mut dp_total = 0.0;
    let mut dp_cross = 0.0;
    for pair in scheme.groups.windows(2) {
        let (a, b) = (&pair[0], &pair[1]);
        for rank in 0..a.len().min(b.len()) {
            let (na, nb) = (a.nodes[rank], b.nodes[rank]);
            dp_total += model.dp_volume_per_pair;
            match fat_tree.distance(na, nb) {
                Ok(distance) if distance.crosses_tor() => dp_cross += model.dp_volume_per_pair,
                Ok(_) => {}
                Err(_) => dp_cross += model.dp_volume_per_pair,
            }
        }
    }
    if tp_total + dp_total == 0.0 {
        0.0
    } else {
        dp_cross / (tp_total + dp_total)
    }
}

/// Fraction of *DCN* (DP/CP/PP) pairs that cross a ToR — a stricter view of the
/// same placement, useful for debugging orchestration quality.
pub fn cross_tor_pair_fraction(scheme: &PlacementScheme, fat_tree: &FatTree) -> f64 {
    let mut pairs = 0usize;
    let mut crossing = 0usize;
    for pair in scheme.groups.windows(2) {
        let (a, b) = (&pair[0], &pair[1]);
        for rank in 0..a.len().min(b.len()) {
            pairs += 1;
            match fat_tree.distance(a.nodes[rank], b.nodes[rank]) {
                Ok(d) if d.crosses_tor() => crossing += 1,
                Ok(_) => {}
                Err(_) => crossing += 1,
            }
        }
    }
    if pairs == 0 {
        0.0
    } else {
        crossing as f64 / pairs as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::TpGroup;
    use hbd_types::NodeId;

    fn tree() -> FatTree {
        FatTree::new(64, 4, 4).unwrap()
    }

    fn group(ids: &[usize]) -> TpGroup {
        TpGroup::new(ids.iter().map(|&i| NodeId(i)).collect())
    }

    #[test]
    fn empty_scheme_has_no_traffic() {
        let scheme = PlacementScheme::new();
        assert_eq!(
            cross_tor_rate(&scheme, &tree(), &TrafficModel::default()),
            0.0
        );
        assert_eq!(cross_tor_pair_fraction(&scheme, &tree()), 0.0);
    }

    #[test]
    fn same_tor_dp_pairs_do_not_cross() {
        // Groups 0 and 1 have every rank's nodes under the same ToR (nodes 0-3
        // share ToR 0, 4-7 share ToR 1).
        let scheme = PlacementScheme::from_groups(vec![group(&[0, 4]), group(&[1, 5])]);
        assert_eq!(cross_tor_pair_fraction(&scheme, &tree()), 0.0);
        assert_eq!(
            cross_tor_rate(&scheme, &tree(), &TrafficModel::default()),
            0.0
        );
    }

    #[test]
    fn cross_tor_pairs_are_counted() {
        // Rank-0 pair 0<->8 crosses ToRs (ToR 0 vs ToR 2); rank-1 pair 1<->9
        // crosses as well.
        let scheme = PlacementScheme::from_groups(vec![group(&[0, 1]), group(&[8, 9])]);
        assert_eq!(cross_tor_pair_fraction(&scheme, &tree()), 1.0);
        let rate = cross_tor_rate(&scheme, &tree(), &TrafficModel::paper_tp32());
        // 2 crossing pairs x 50 over (4 nodes x 450 + 2 x 50) = 100 / 1900.
        assert!((rate - 100.0 / 1900.0).abs() < 1e-12);
    }

    #[test]
    fn all_crossing_placement_sits_near_ten_percent() {
        // A long chain of single-node groups, each in a different ToR: every DP
        // pair crosses, and the rate approaches dp / (tp + dp) ~ 10%.
        let groups: Vec<TpGroup> = (0..16).map(|i| group(&[i * 4])).collect();
        let scheme = PlacementScheme::from_groups(groups);
        let rate = cross_tor_rate(&scheme, &tree(), &TrafficModel::paper_tp32());
        assert!(rate > 0.08 && rate < 0.11, "rate {rate}");
    }

    #[test]
    fn out_of_range_nodes_count_as_crossing() {
        let scheme = PlacementScheme::from_groups(vec![group(&[0]), group(&[999])]);
        assert_eq!(cross_tor_pair_fraction(&scheme, &tree()), 1.0);
    }
}
