//! The HBD-DCN orchestration algorithms (§4.3 and Appendix D).
//!
//! InfiniteHBD lets any run of healthy nodes form a TP ring, so the remaining
//! freedom — *which* nodes form each TP group and *which DP rank* each group
//! takes — is what decides how much DP/CP/PP traffic has to cross ToR switches
//! in the DCN. This crate implements:
//!
//! * [`scheme`] — the placement-scheme data model (ordered TP groups of nodes),
//! * [`dcn_free`] — `Orchestration-DCN-Free` (Algorithm 2): connected
//!   components of the healthy K-Hop graph, cut into TP groups,
//! * [`deployment`] — `Deployment-Strategy` (Algorithm 3): the interleaved
//!   physical wiring that makes HBD neighbours live under different ToRs,
//! * [`fat_tree`] — `Placement-Fat-Tree` (Algorithm 4) and the binary-search
//!   driver `Orchestration-Fat-Tree` (Algorithms 1 and 5),
//! * [`greedy`] — the baseline of §6.4: pick healthy nodes in arbitrary order
//!   and use the first grouping that satisfies the job,
//! * [`traffic`] — cross-ToR traffic accounting for a placement scheme
//!   (the metric of Fig 17a–c),
//! * [`service`] — the operational serving layer: epoch-swapped cluster
//!   snapshots ([`service::SnapshotStore`]) and batched placement / max-job /
//!   what-if queries ([`service::PlacementService`]) pinned bit-for-bit to
//!   the single-query algorithms above.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod client;
pub mod dcn_free;
pub mod deployment;
pub mod fat_tree;
pub mod greedy;
pub mod scheme;
pub mod search;
pub mod service;
pub mod traffic;

pub use admission::{
    AdmissionConfig, AdmissionController, AdmissionStats, AnsweredQuery, Disposition, ShedPolicy,
    ShedQuery, ShedReason, Ticket,
};
pub use client::{
    ClientConfig, ClientOutcome, ClientQuery, ClientReport, RetryPolicy, RetryingClient,
    StorePublish,
};
pub use dcn_free::orchestrate_dcn_free;
pub use deployment::DeploymentStrategy;
pub use fat_tree::{FatTreeOrchestrator, OrchestrationRequest, ScratchPatchStats};
pub use greedy::greedy_placement;
pub use scheme::{PlacementScheme, TpGroup};
pub use search::{max_orchestratable_job, MaxJobReport};
pub use service::{
    BatchReport, BatchStats, ClusterSnapshot, ModeledLatency, PatchTally, PlacementAnswer,
    PlacementQuery, PlacementService, QueryCost, QueryKind, SnapshotDelta, SnapshotStore,
};
pub use traffic::{cross_tor_rate, TrafficModel};
