//! Property tests for the greedy baseline's partial-placement accounting
//! (the §6.4 baseline under shrinking node pools).
//!
//! When the shuffle cannot satisfy a job, the partial placement must still be
//! *well-formed*: every group has exactly `nodes_per_group` healthy, distinct
//! nodes (never a short trailing group), a zero-node job places nothing, and
//! the downstream traffic accounting (`cross_tor_rate`) stays finite — no
//! NaN/Inf leaking out of empty or partial schemes.

use orchestrator::{cross_tor_rate, greedy_placement, TrafficModel};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeSet;
use topology::{FatTree, FaultSet};

proptest! {
    /// Over pools shrinking all the way to zero healthy nodes: group shape,
    /// fault avoidance, disjointness and request clamping all hold, and the
    /// traffic model stays finite on whatever partial scheme results.
    #[test]
    fn shrinking_pools_keep_partial_placements_well_formed(
        total in 0usize..64,
        faulty_prefix in 0usize..64,
        nodes_per_group in 1usize..9,
        job_nodes in 0usize..96,
        seed in 0u64..32,
    ) {
        let faults = FaultSet::from_nodes((0..faulty_prefix.min(total)).map(hbd_types::NodeId));
        let mut rng = StdRng::seed_from_u64(seed);
        let scheme = greedy_placement(total, &faults, nodes_per_group, job_nodes, &mut rng);

        // Every group is full-size; a zero-node job places zero groups.
        for group in &scheme.groups {
            prop_assert_eq!(group.len(), nodes_per_group);
        }
        if job_nodes == 0 {
            prop_assert!(scheme.is_empty(), "zero-node job must place nothing");
        }

        // No faulty nodes, no duplicates, nothing outside the pool.
        let mut seen = BTreeSet::new();
        for group in &scheme.groups {
            for &node in &group.nodes {
                prop_assert!(node.index() < total);
                prop_assert!(!faults.is_faulty(node));
                prop_assert!(seen.insert(node), "node {} placed twice", node);
            }
        }

        // Clamped to the request (rounded up to whole groups) and to the pool.
        let healthy = total - faulty_prefix.min(total);
        let requested_cap = job_nodes.div_ceil(nodes_per_group) * nodes_per_group;
        prop_assert!(scheme.nodes_placed() <= requested_cap);
        prop_assert!(scheme.nodes_placed() <= healthy);

        // Downstream accounting is finite for every partial/empty scheme.
        let fat_tree = FatTree::new(64, 4, 4).unwrap();
        let rate = cross_tor_rate(&scheme, &fat_tree, &TrafficModel::paper_tp32());
        prop_assert!(rate.is_finite());
        prop_assert!((0.0..=1.0).contains(&rate));
    }
}
