//! Oracle proptests of the admission controller (the issue's invariant
//! pins), each checked against a policy-free reference rather than against
//! the controller's own bookkeeping:
//!
//! - **Conservation** — every offered ticket reaches exactly one
//!   disposition: `answered + shed == offered`, no id answered twice, no id
//!   lost, under every shedding policy and queue capacity (zero included).
//! - **No late answers** — an `Answered` disposition never completes past
//!   its ticket's absolute deadline; deadline misses must surface as typed
//!   `Shed(DeadlineExpired)` outcomes instead.
//! - **Policy-free oracle** — with an unbounded queue and no deadlines the
//!   controller degenerates to a plain FIFO in front of the service: every
//!   ticket is answered, completions are monotone in offer order, and every
//!   answer is bit-identical to the unqueued single-query service call.
//! - **Thread invariance** — dispositions (ids, answers, modeled instants)
//!   are byte-identical for 1 vs 4 worker threads.
//! - **Breaker monotonicity** — the circuit breaker's transition log is
//!   monotone in time and only ever walks legal edges
//!   (`Closed→Open→HalfOpen→{Closed,Open}`), for arbitrary
//!   success/failure/probe interleavings.

use hbd_types::robust::{BreakerConfig, BreakerState, CircuitBreaker};
use hbd_types::Seconds;
use orchestrator::admission::{
    AdmissionConfig, AdmissionController, Disposition, ShedPolicy, Ticket,
};
use orchestrator::service::{ModeledLatency, PlacementQuery, PlacementService, SnapshotStore};
use orchestrator::{FatTreeOrchestrator, OrchestrationRequest};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::sync::Arc;
use topology::{FatTree, FaultSet};

const NODES: usize = 128;

fn service() -> PlacementService {
    let orch = Arc::new(FatTreeOrchestrator::new(FatTree::new(NODES, 8, 4).unwrap()).unwrap());
    PlacementService::new(Arc::new(SnapshotStore::new(orch, FaultSet::new())))
}

/// A random query mix (placements, probes, what-ifs, occasional invalid
/// requests — the controller must shed or answer them, never panic).
fn random_query(rng: &mut StdRng) -> PlacementQuery {
    let nodes_per_group = [4usize, 8][rng.gen_range(0..2usize)];
    let request = OrchestrationRequest {
        job_nodes: rng.gen_range(0..=NODES / 2),
        nodes_per_group,
        k: 2,
    };
    match rng.gen_range(0..5) {
        0 => PlacementQuery::MaxJob {
            nodes_per_group,
            k: 2,
        },
        1 => PlacementQuery::WhatIf {
            request,
            extra_faults: FaultSet::from_nodes(
                (0..rng.gen_range(0..8)).map(|_| hbd_types::NodeId(rng.gen_range(0..NODES))),
            ),
        },
        _ => PlacementQuery::Place(request),
    }
}

/// A seeded open-loop ticket stream: time-ordered arrivals, a mix of
/// generous, tight and already-expired deadlines, four priority classes.
fn random_tickets(seed: u64, count: usize, deadlines: bool) -> Vec<Ticket> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut now = 0.0f64;
    (0..count)
        .map(|i| {
            now += rng.gen_range(0.0..60.0);
            let deadline_us = if !deadlines {
                f64::INFINITY
            } else {
                match rng.gen_range(0..6) {
                    0 => now,                            // not strictly after arrival: shed on arrival
                    1 => now + rng.gen_range(1.0..50.0), // likely too tight
                    _ => now + rng.gen_range(200.0..4_000.0),
                }
            };
            Ticket {
                id: i as u64,
                query: random_query(&mut rng),
                arrival_us: now,
                deadline_us,
                class: rng.gen_range(0..4),
            }
        })
        .collect()
}

/// Offers every ticket at its arrival instant, then drains the queue.
fn drive(
    service: &PlacementService,
    tickets: &[Ticket],
    config: AdmissionConfig,
    threads: usize,
) -> Vec<Disposition> {
    let mut controller = AdmissionController::new(config, ModeledLatency::for_cluster(NODES));
    let mut out = Vec::new();
    for ticket in tickets {
        controller.run_until(service, ticket.arrival_us, threads, &mut out);
        controller.offer(ticket.clone(), &mut out);
    }
    controller.drain(service, threads, &mut out);
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Conservation and no-late-answer, against every policy and tight
    /// random capacities (zero included: everything shed, nothing lost).
    #[test]
    fn every_ticket_gets_exactly_one_disposition_and_none_past_deadline(
        seed in 0u64..10_000,
        count in 1usize..40,
        capacity in 0usize..10,
        batch_cap in 1usize..5,
        policy_idx in 0usize..3,
    ) {
        let policy = [
            ShedPolicy::RejectNewest,
            ShedPolicy::DeadlineAware,
            ShedPolicy::PriorityClass,
        ][policy_idx];
        let tickets = random_tickets(seed, count, true);
        let first = service();
        let out = drive(
            &first,
            &tickets,
            AdmissionConfig { capacity, batch_cap, policy },
            1,
        );

        // Exactly one disposition per offered id.
        prop_assert_eq!(out.len(), tickets.len());
        let mut ids: Vec<u64> = out.iter().map(Disposition::id).collect();
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids.len(), tickets.len());

        // The controller's own counters agree with the dispositions. The
        // replay gets a fresh service: the modeled batch cost reads the
        // service's cost counters, and a warmed scratch cache would change
        // the timing (and hence the deadline sheds) of a second run.
        let answered = out.iter().filter(|d| matches!(d, Disposition::Answered(_))).count();
        let shed = out.len() - answered;
        let fresh = service();
        let mut controller =
            AdmissionController::new(AdmissionConfig { capacity, batch_cap, policy },
                                     ModeledLatency::for_cluster(NODES));
        let mut replay = Vec::new();
        for ticket in &tickets {
            controller.run_until(&fresh, ticket.arrival_us, 1, &mut replay);
            controller.offer(ticket.clone(), &mut replay);
        }
        controller.drain(&fresh, 1, &mut replay);
        let stats = controller.stats();
        prop_assert_eq!(stats.offered, tickets.len() as u64);
        prop_assert_eq!(stats.answered, answered as u64);
        prop_assert_eq!(stats.shed(), shed as u64);

        // No answer past its deadline; shed instants and retry hints sane.
        let deadline_of: BTreeMap<u64, f64> =
            tickets.iter().map(|t| (t.id, t.deadline_us)).collect();
        for disposition in &out {
            match disposition {
                Disposition::Answered(a) => {
                    prop_assert!(a.completed_us <= deadline_of[&a.id]);
                    prop_assert!(a.sojourn_us >= 0.0);
                }
                Disposition::Shed(s) => {
                    prop_assert!(s.retry_after_us >= 0.0);
                    prop_assert!(s.at_us.is_finite());
                }
            }
        }
    }

    /// With an unbounded queue and no deadlines the controller is a plain
    /// FIFO: everything answered, completions monotone in offer order, and
    /// every answer bit-identical to the unqueued single-query oracle.
    #[test]
    fn unbounded_controller_matches_the_policy_free_fifo_oracle(
        seed in 0u64..10_000,
        count in 1usize..24,
        batch_cap in 1usize..5,
    ) {
        let tickets = random_tickets(seed, count, false);
        let service = service();
        let out = drive(
            &service,
            &tickets,
            AdmissionConfig {
                capacity: usize::MAX,
                batch_cap,
                policy: ShedPolicy::RejectNewest,
            },
            1,
        );

        prop_assert_eq!(out.len(), tickets.len());
        let mut last_completed = 0.0f64;
        let mut by_id: BTreeMap<u64, &Disposition> = BTreeMap::new();
        for disposition in &out {
            by_id.insert(disposition.id(), disposition);
        }
        for ticket in &tickets {
            match by_id[&ticket.id] {
                Disposition::Answered(a) => {
                    // FIFO: completion order follows offer order.
                    prop_assert!(a.completed_us >= last_completed);
                    last_completed = a.completed_us;
                    // Bit-identical to the unqueued oracle answer.
                    let oracle = service.answer_batch(
                        std::slice::from_ref(&ticket.query), 1);
                    prop_assert_eq!(&a.answer, &oracle.answers[0]);
                }
                Disposition::Shed(s) => {
                    prop_assert!(false, "unbounded patient queue shed id {}", s.id);
                }
            }
        }
    }

    /// Dispositions are byte-identical across worker thread counts.
    #[test]
    fn dispositions_are_invariant_in_the_thread_count(
        seed in 0u64..10_000,
        count in 1usize..32,
        capacity in 0usize..8,
        policy_idx in 0usize..3,
    ) {
        let policy = [
            ShedPolicy::RejectNewest,
            ShedPolicy::DeadlineAware,
            ShedPolicy::PriorityClass,
        ][policy_idx];
        let config = AdmissionConfig { capacity, batch_cap: 4, policy };
        let tickets = random_tickets(seed, count, true);
        // One fresh service per drive: a shared, cache-warmed service would
        // answer the second run faster in modeled time.
        let one = drive(&service(), &tickets, config, 1);
        let four = drive(&service(), &tickets, config, 4);
        prop_assert_eq!(format!("{one:?}"), format!("{four:?}"));
    }

    /// The breaker's transition log is monotone in time and only ever walks
    /// legal edges, whatever the success/failure/probe interleaving.
    #[test]
    fn breaker_transitions_are_monotone_and_legal(
        seed in 0u64..10_000,
        steps in 1usize..120,
        threshold in 1u32..5,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut breaker = CircuitBreaker::new(BreakerConfig {
            failure_threshold: threshold,
            cooldown: Seconds(0.002),
        });
        let mut now = 0.0f64;
        for _ in 0..steps {
            now += rng.gen_range(0.0..0.003);
            match rng.gen_range(0..3) {
                0 => breaker.on_failure(Seconds(now)),
                1 => breaker.on_success(Seconds(now)),
                _ => {
                    let _ = breaker.allow(Seconds(now));
                }
            }
        }

        let transitions = breaker.transitions();
        let mut previous_state = BreakerState::Closed;
        let mut previous_at = Seconds(0.0);
        for &(at, state) in transitions {
            prop_assert!(at.value() >= previous_at.value(), "transition log must be monotone");
            let legal = matches!(
                (previous_state, state),
                (BreakerState::Closed, BreakerState::Open)
                    | (BreakerState::Open, BreakerState::HalfOpen)
                    | (BreakerState::HalfOpen, BreakerState::Closed)
                    | (BreakerState::HalfOpen, BreakerState::Open)
            );
            prop_assert!(legal, "illegal edge {previous_state:?} -> {state:?}");
            previous_at = at;
            previous_state = state;
        }
        prop_assert_eq!(breaker.state(), previous_state);
        prop_assert_eq!(
            breaker.opens(),
            transitions.iter().filter(|(_, s)| *s == BreakerState::Open).count()
        );
    }
}
