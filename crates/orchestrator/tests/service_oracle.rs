//! The oracle pin of the placement-query service layer (standing
//! oracle-vs-fast-solver practice): batched [`PlacementService`] answers must
//! be **bit-identical** — same placements, same `NodeId`s, same order, same
//! errors — to answering each query alone with the sequential single-query
//! entry points ([`FatTreeOrchestrator::orchestrate_par`] /
//! [`max_orchestratable_job`]), across random batch compositions, random
//! fault sets, and 1 / 4 / 16 worker threads.

use orchestrator::service::{PlacementAnswer, PlacementQuery, PlacementService, SnapshotStore};
use orchestrator::{max_orchestratable_job, FatTreeOrchestrator, OrchestrationRequest};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use topology::{FatTree, FaultSet};

const NODES: usize = 256;

fn orchestrator() -> Arc<FatTreeOrchestrator> {
    Arc::new(FatTreeOrchestrator::new(FatTree::new(NODES, 8, 4).unwrap()).unwrap())
}

/// A random query, including occasional invalid requests (the service must
/// reproduce the oracle's rejection, not mask it).
fn random_query(rng: &mut StdRng) -> PlacementQuery {
    let nodes_per_group = [4usize, 8][rng.gen_range(0..2usize)];
    let k = rng.gen_range(1..=2);
    let job_nodes = if rng.gen_range(0..10) == 0 {
        0 // invalid: must answer with the oracle's validation error
    } else {
        rng.gen_range(1..=NODES + 32) // occasionally infeasible
    };
    let request = OrchestrationRequest {
        job_nodes,
        nodes_per_group,
        k,
    };
    match rng.gen_range(0..4) {
        0 => PlacementQuery::MaxJob { nodes_per_group, k },
        1 => {
            let extra = FaultSet::from_nodes(
                (0..rng.gen_range(0..20)).map(|_| hbd_types::NodeId(rng.gen_range(0..NODES))),
            );
            PlacementQuery::WhatIf {
                request,
                extra_faults: extra,
            }
        }
        _ => PlacementQuery::Place(request),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn batched_answers_match_the_sequential_oracle(
        seed in 0u64..10_000,
        batch_len in 1usize..13,
        fault_count in 0usize..48,
        threads_idx in 0usize..3,
    ) {
        let threads = [1usize, 4, 16][threads_idx];
        let mut rng = StdRng::seed_from_u64(seed);
        let faults = FaultSet::from_nodes(
            (0..fault_count).map(|_| hbd_types::NodeId(rng.gen_range(0..NODES))),
        );
        let queries: Vec<PlacementQuery> =
            (0..batch_len).map(|_| random_query(&mut rng)).collect();

        let orch = orchestrator();
        let store = Arc::new(SnapshotStore::new(Arc::clone(&orch), faults.clone()));
        let service = PlacementService::new(store);
        let report = service.answer_batch(&queries, threads);

        prop_assert_eq!(report.epoch, 0);
        prop_assert_eq!(report.answers.len(), queries.len());
        prop_assert_eq!(report.costs.len(), queries.len());
        for (i, (query, answer)) in queries.iter().zip(&report.answers).enumerate() {
            let expected = match query {
                PlacementQuery::Place(request) => {
                    PlacementAnswer::Placement(orch.orchestrate_par(request, &faults, 1))
                }
                PlacementQuery::MaxJob { nodes_per_group, k } => PlacementAnswer::MaxJob {
                    job_nodes: max_orchestratable_job(&orch, *nodes_per_group, *k, &faults, 1)
                        .job_nodes,
                },
                PlacementQuery::WhatIf {
                    request,
                    extra_faults,
                } => PlacementAnswer::Placement(orch.orchestrate_par(
                    request,
                    &faults.union(extra_faults),
                    1,
                )),
            };
            prop_assert_eq!(answer, &expected, "query {} of {:?}", i, query);
        }
    }
}
