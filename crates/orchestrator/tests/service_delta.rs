//! Incremental-publish integration properties: a service whose scratches are
//! patched forward across delta-published epochs, pinned bit-for-bit against
//! a cold-rebuilt reference service — answers *and* `QueryCost` /
//! `BatchStats` counters — over random delta sequences and thread counts
//! (the standing oracle-vs-fast-solver practice, one level up from the
//! per-scratch patch properties in `fat_tree`).

use hbd_types::NodeId;
use orchestrator::{
    FatTreeOrchestrator, OrchestrationRequest, PlacementQuery, PlacementService, SnapshotDelta,
    SnapshotStore,
};
use proptest::prelude::*;
use std::sync::Arc;
use topology::{FatTree, FaultSet};

const NODES: usize = 256;
const THREADS: [usize; 3] = [1, 4, 16];

fn orchestrator() -> Arc<FatTreeOrchestrator> {
    Arc::new(FatTreeOrchestrator::new(FatTree::new(NODES, 8, 4).unwrap()).unwrap())
}

/// One delta as raw flips: `(node, kind)` with kind 0 = occupied,
/// 1 = faulted, 2 = released.
fn arbitrary_delta() -> impl Strategy<Value = Vec<(usize, usize)>> {
    proptest::collection::vec((0..NODES, 0usize..3), 1..10)
}

/// One query as raw numbers: `(kind, job_nodes, extra_node)` with kind
/// 0 = `Place`, 1 = `MaxJob`, 2 = `WhatIf`.
fn arbitrary_queries() -> impl Strategy<Value = Vec<(usize, usize, usize)>> {
    proptest::collection::vec((0usize..3, 1usize..200, 0..NODES), 2..6)
}

fn build_delta(flips: &[(usize, usize)]) -> SnapshotDelta {
    let mut delta = SnapshotDelta::new();
    for &(node, kind) in flips {
        match kind {
            0 => delta.occupied.add(NodeId(node)),
            1 => delta.faulted.add(NodeId(node)),
            _ => delta.released.add(NodeId(node)),
        };
    }
    delta
}

/// The naive oracle for what a delta publish must leave in the snapshot:
/// union in the exclusions, then remove the releases.
fn apply_delta(live: &mut FaultSet, delta: &SnapshotDelta) {
    live.union_with(&delta.occupied);
    live.union_with(&delta.faulted);
    for node in delta.released.iter() {
        live.remove(node);
    }
}

fn build_queries(raw: &[(usize, usize, usize)]) -> Vec<PlacementQuery> {
    raw.iter()
        .map(|&(kind, job_nodes, extra)| {
            let request = OrchestrationRequest {
                job_nodes,
                nodes_per_group: 8,
                k: 2,
            };
            match kind {
                0 => PlacementQuery::Place(request),
                1 => PlacementQuery::MaxJob {
                    nodes_per_group: 8,
                    k: 2,
                },
                _ => PlacementQuery::WhatIf {
                    request,
                    extra_faults: FaultSet::from_nodes([NodeId(extra)]),
                },
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Across a random chain of delta publishes, every batch answered by the
    /// long-lived (patching) services matches a reference service built cold
    /// on the epoch's fault state — same answers, same per-query costs, same
    /// batch stats — at 1, 4 and 16 threads, with all thread counts agreeing.
    #[test]
    fn patched_epochs_match_cold_rebuilt_services(
        initial in proptest::collection::vec(0..NODES, 0..16),
        deltas in proptest::collection::vec(arbitrary_delta(), 1..4),
        raw_queries in proptest::collection::vec(arbitrary_queries(), 1..4),
    ) {
        let orch = orchestrator();
        let mut live = FaultSet::from_nodes(initial.iter().map(|&n| NodeId(n)));
        // One shared store, one long-lived service per thread count: each
        // service patches its scratches forward on every epoch advance.
        let store = Arc::new(SnapshotStore::new(Arc::clone(&orch), live.clone()));
        let incremental: Vec<PlacementService> = THREADS
            .iter()
            .map(|_| PlacementService::new(Arc::clone(&store)))
            .collect();
        for (epoch_index, flips) in deltas.iter().enumerate() {
            let delta = build_delta(flips);
            prop_assert!(!delta.is_empty());
            let published = store.publish_delta(&delta);
            prop_assert_eq!(published, epoch_index as u64 + 1);
            apply_delta(&mut live, &delta);
            let snapshot = store.load();
            prop_assert_eq!(snapshot.value.faults(), &live);

            // A cold reference world on the same fault state, fresh per
            // epoch and per thread count so its builds start from nothing.
            let reference: Vec<PlacementService> = THREADS
                .iter()
                .map(|_| {
                    PlacementService::new(Arc::new(SnapshotStore::new(
                        Arc::clone(&orch),
                        live.clone(),
                    )))
                })
                .collect();
            for raw in &raw_queries {
                let queries = build_queries(raw);
                let mut first_report = None;
                for (slot, &threads) in THREADS.iter().enumerate() {
                    let inc = incremental[slot].answer_batch(&queries, threads);
                    let cold = reference[slot].answer_batch(&queries, threads);
                    // Bit-for-bit: answers, per-query costs, batch counters.
                    prop_assert_eq!(&inc.answers, &cold.answers);
                    prop_assert_eq!(&inc.costs, &cold.costs);
                    prop_assert_eq!(inc.stats, cold.stats);
                    match &first_report {
                        None => first_report = Some(inc),
                        Some(first) => {
                            prop_assert_eq!(&first.answers, &inc.answers);
                            prop_assert_eq!(&first.costs, &inc.costs);
                            prop_assert_eq!(first.stats, inc.stats);
                        }
                    }
                }
            }
        }
    }
}
