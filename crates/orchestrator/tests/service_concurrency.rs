//! Concurrency pin of the snapshot store: a publisher swaps snapshots
//! mid-stream while reader threads batch-query the service, and **every**
//! answer must be consistent with exactly one published epoch — no torn
//! reads, no answers mixing the fault state of two epochs.
//!
//! The test is seeded and its assertions are timing-independent: the
//! reference answer of every epoch is precomputed sequentially, the epochs
//! are constructed so all references are pairwise distinct (a mixed or torn
//! answer cannot masquerade as another epoch's), and each observed
//! `BatchReport` is checked against the reference of the epoch it claims.
//! Which epochs a reader happens to observe depends on scheduling; that the
//! observation is valid does not.

use orchestrator::service::{
    BatchReport, PlacementAnswer, PlacementQuery, PlacementService, SnapshotStore,
};
use orchestrator::{max_orchestratable_job, FatTreeOrchestrator, OrchestrationRequest};
use std::sync::Arc;
use topology::{FatTree, FaultSet};

const NODES: usize = 256;
const EPOCHS: usize = 6;

/// The fault state of epoch `e`: a scattered pattern whose stride and size
/// both depend on the epoch, so every epoch shifts the surviving K-Hop runs
/// and answers differently (asserted below before any concurrency starts).
fn epoch_faults(e: usize) -> FaultSet {
    let stride = [3usize, 5, 7, 11, 13, 17][e];
    FaultSet::from_nodes((0..16 + e * 8).map(|i| hbd_types::NodeId(i * stride % NODES)))
}

fn probe_queries() -> Vec<PlacementQuery> {
    let request = OrchestrationRequest {
        job_nodes: 128,
        nodes_per_group: 8,
        k: 2,
    };
    vec![
        PlacementQuery::Place(request),
        PlacementQuery::MaxJob {
            nodes_per_group: 8,
            k: 2,
        },
        PlacementQuery::WhatIf {
            request,
            extra_faults: FaultSet::from_nodes([hbd_types::NodeId(NODES - 1)]),
        },
    ]
}

/// Sequential per-epoch reference, via the single-query oracles.
fn reference_answers(orch: &FatTreeOrchestrator, faults: &FaultSet) -> Vec<PlacementAnswer> {
    probe_queries()
        .iter()
        .map(|query| match query {
            PlacementQuery::Place(request) => {
                PlacementAnswer::Placement(orch.orchestrate_par(request, faults, 1))
            }
            PlacementQuery::MaxJob { nodes_per_group, k } => PlacementAnswer::MaxJob {
                job_nodes: max_orchestratable_job(orch, *nodes_per_group, *k, faults, 1).job_nodes,
            },
            PlacementQuery::WhatIf {
                request,
                extra_faults,
            } => PlacementAnswer::Placement(orch.orchestrate_par(
                request,
                &faults.union(extra_faults),
                1,
            )),
        })
        .collect()
}

fn assert_consistent(report: &BatchReport, references: &[Vec<PlacementAnswer>]) {
    let epoch = usize::try_from(report.epoch).unwrap();
    assert!(epoch < references.len(), "unpublished epoch {epoch}");
    assert_eq!(
        report.answers, references[epoch],
        "answers of epoch {epoch} are not that epoch's reference"
    );
}

#[test]
fn readers_never_observe_a_torn_snapshot() {
    let orch = Arc::new(FatTreeOrchestrator::new(FatTree::new(NODES, 8, 4).unwrap()).unwrap());
    let references: Vec<Vec<PlacementAnswer>> = (0..EPOCHS)
        .map(|e| reference_answers(&orch, &epoch_faults(e)))
        .collect();
    // The epochs must be distinguishable, otherwise a mixed answer could
    // pass as a coherent one.
    for e in 1..EPOCHS {
        assert_ne!(
            references[e - 1],
            references[e],
            "epochs {} and {e} must answer differently",
            e - 1
        );
    }

    let store = Arc::new(SnapshotStore::new(Arc::clone(&orch), epoch_faults(0)));
    let service = Arc::new(PlacementService::new(Arc::clone(&store)));
    let queries = probe_queries();

    std::thread::scope(|scope| {
        let publisher_store = Arc::clone(&store);
        scope.spawn(move || {
            for e in 1..EPOCHS {
                assert_eq!(publisher_store.publish(epoch_faults(e)), e as u64);
                std::thread::yield_now();
            }
        });
        for reader in 0..3usize {
            let service = Arc::clone(&service);
            let references = &references;
            let queries = &queries;
            scope.spawn(move || {
                let mut last_epoch = 0u64;
                for round in 0..12 {
                    // Vary the fan-out so batches race the publisher under
                    // different interleavings.
                    let threads = 1 + (reader + round) % 3;
                    let report = service.answer_batch(queries, threads);
                    assert_consistent(&report, references);
                    // A single store hands out monotonically advancing epochs.
                    assert!(
                        report.epoch >= last_epoch,
                        "epoch went backwards: {} after {last_epoch}",
                        report.epoch
                    );
                    last_epoch = report.epoch;
                }
            });
        }
    });

    // Quiescence: with the publisher done, the service must answer with the
    // final epoch's reference.
    let settled = service.answer_batch(&queries, 2);
    assert_eq!(settled.epoch, (EPOCHS - 1) as u64);
    assert_consistent(&settled, &references);
}
