//! Offline stand-in for `serde_json`, built on the vendored `serde` shim's
//! [`Value`] tree: a hand-written JSON parser, compact and pretty printers,
//! and a simplified [`json!`] macro.

#![forbid(unsafe_code)]

pub use serde::de::Error;
pub use serde::value::{Map, Number, Value};

use serde::{Deserialize, Serialize};

/// Converts any serialisable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Rebuilds a deserialisable type from a [`Value`] tree.
pub fn from_value<T: Deserialize>(value: &Value) -> Result<T, Error> {
    T::from_value(value)
}

/// Serialises to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let tree = value.to_value();
    reject_non_finite(&tree)?;
    let mut out = String::new();
    tree.write_compact(&mut out);
    Ok(out)
}

/// Serialises to two-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let tree = value.to_value();
    reject_non_finite(&tree)?;
    let mut out = String::new();
    tree.write_pretty(&mut out, 0);
    Ok(out)
}

/// JSON has no NaN/inf: error at write time (like real serde_json) instead of
/// emitting a `null` that only blows up when read back.
fn reject_non_finite(value: &Value) -> Result<(), Error> {
    match value {
        Value::Number(n) if !n.is_finite() => Err(Error::custom(
            "cannot serialise non-finite float (NaN or infinity) as JSON",
        )),
        Value::Array(items) => items.iter().try_for_each(reject_non_finite),
        Value::Object(map) => map.values().try_for_each(reject_non_finite),
        _ => Ok(()),
    }
}

/// Parses JSON text into any deserialisable type.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse_value(text)?;
    T::from_value(&value)
}

/// Builds a [`Value`] literal.
///
/// Simplified relative to real `serde_json`: object keys must be string
/// literals and values are arbitrary serialisable expressions (or nested
/// `[..]` arrays and `null`/`true`/`false` literals).
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    (true) => { $crate::Value::Bool(true) };
    (false) => { $crate::Value::Bool(false) };
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::to_value(&$elem) ),* ])
    };
    ({ $($key:literal : $val:expr),* $(,)? }) => {{
        #[allow(unused_mut)]
        let mut __map = $crate::Map::new();
        $( __map.insert(::std::string::String::from($key), $crate::to_value(&$val)); )*
        $crate::Value::Object(__map)
    }};
    ($other:expr) => { $crate::to_value(&$other) };
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

/// Maximum container nesting accepted by the parser (mirrors real
/// serde_json's recursion limit, turning hostile input into an `Err` instead
/// of a stack overflow).
const MAX_DEPTH: usize = 128;

fn parse_value(text: &str) -> Result<Value, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
        depth: 0,
    };
    let value = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    Ok(value)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected {:?} at byte {}",
                byte as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(Error::custom(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn enter(&mut self) -> Result<(), Error> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(Error::custom(format!(
                "JSON nesting exceeds the maximum depth of {MAX_DEPTH}"
            )));
        }
        Ok(())
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.enter()?;
        let result = self.array_inner();
        self.depth -= 1;
        result
    }

    fn array_inner(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(Error::custom(format!(
                        "expected ',' or ']' in array, found {:?} at byte {}",
                        other.map(|b| b as char),
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.enter()?;
        let result = self.object_inner();
        self.depth -= 1;
        result
    }

    fn object_inner(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                other => {
                    return Err(Error::custom(format!(
                        "expected ',' or '}}' in object, found {:?} at byte {}",
                        other.map(|b| b as char),
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::custom("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let code = self.unicode_escape()?;
                            out.push(code);
                            continue;
                        }
                        other => {
                            return Err(Error::custom(format!(
                                "invalid escape {:?}",
                                other.map(|b| b as char)
                            )))
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (the input is a &str, so the
                    // byte stream is valid UTF-8).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|e| Error::custom(e.to_string()))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Parses the 4 hex digits after `\u` (and a following low surrogate when
    /// needed); `self.pos` is on the `u`.
    fn unicode_escape(&mut self) -> Result<char, Error> {
        self.pos += 1; // the 'u'
        let hi = self.hex4()?;
        if (0xd800..0xdc00).contains(&hi) {
            if !(self.eat_literal("\\u")) {
                return Err(Error::custom("unpaired high surrogate"));
            }
            let lo = self.hex4()?;
            if !(0xdc00..0xe000).contains(&lo) {
                return Err(Error::custom("invalid low surrogate"));
            }
            let code = 0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00);
            char::from_u32(code).ok_or_else(|| Error::custom("invalid surrogate pair"))
        } else {
            char::from_u32(hi).ok_or_else(|| Error::custom("invalid \\u escape"))
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let slice = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| Error::custom("truncated \\u escape"))?;
        let text = std::str::from_utf8(slice).map_err(|e| Error::custom(e.to_string()))?;
        let code = u32::from_str_radix(text, 16)
            .map_err(|_| Error::custom(format!("invalid \\u escape {text:?}")))?;
        self.pos += 4;
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|e| Error::custom(e.to_string()))?;
        let number = if !is_float {
            if let Some(stripped) = text.strip_prefix('-') {
                stripped
                    .parse::<u64>()
                    .ok()
                    .and_then(|_| text.parse::<i64>().ok())
                    .map(Number::from_i64)
            } else {
                text.parse::<u64>().ok().map(Number::from_u64)
            }
        } else {
            None
        };
        let number = match number {
            Some(n) => n,
            None => text
                .parse::<f64>()
                .map(Number::from_f64)
                .map_err(|_| Error::custom(format!("invalid number {text:?}")))?,
        };
        Ok(Value::Number(number))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_prints_round_trip() {
        let text = r#"{"a": [1, 2.5, -3], "b": "x\ny", "c": null, "d": true}"#;
        let value: Value = from_str(text).unwrap();
        let compact = to_string(&value).unwrap();
        let back: Value = from_str(&compact).unwrap();
        assert_eq!(value, back);
        let pretty = to_string_pretty(&value).unwrap();
        let back2: Value = from_str(&pretty).unwrap();
        assert_eq!(value, back2);
    }

    #[test]
    fn json_macro_builds_objects() {
        let title = "t";
        let doc = json!({ "experiment": title, "rows": vec![1u64, 2] });
        assert_eq!(doc.get("experiment").and_then(Value::as_str), Some("t"));
        assert_eq!(
            doc.get("rows").and_then(Value::as_array).map(|a| a.len()),
            Some(2)
        );
    }

    #[test]
    fn non_finite_floats_error_at_write_time() {
        assert!(to_string(&f64::NAN).is_err());
        assert!(to_string_pretty(&vec![1.0, f64::INFINITY]).is_err());
        assert!(to_string(&f64::MAX).is_ok());
    }

    #[test]
    fn hostile_nesting_errors_instead_of_overflowing() {
        let bomb = "[".repeat(100_000);
        let err = from_str::<Value>(&bomb).unwrap_err();
        assert!(err.to_string().contains("maximum depth"));
        // Wide-but-shallow documents are fine: depth is released on exit.
        let wide = format!("[{}]", vec!["[1]"; 1000].join(","));
        assert!(from_str::<Value>(&wide).is_ok());
        // Depth right at the limit parses.
        let ok = format!("{}1{}", "[".repeat(128), "]".repeat(128));
        assert!(from_str::<Value>(&ok).is_ok());
    }

    #[test]
    fn floats_round_trip_exactly() {
        for f in [0.1, 1.0 / 3.0, 1e-12, 6.02e23, -2.5, 1.0] {
            let text = to_string(&f).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(f, back, "{text}");
        }
    }
}
