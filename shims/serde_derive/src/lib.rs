//! Derive macros for the vendored `serde` shim.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` for the
//! shapes this workspace actually uses — non-generic structs (named, tuple and
//! unit) and enums (unit, tuple and struct variants) — honouring the
//! `#[serde(transparent)]` attribute on single-field structs.
//!
//! The parser walks the raw `proc_macro::TokenStream` directly instead of
//! pulling in `syn`/`quote` (unavailable offline). Unsupported shapes produce
//! a `compile_error!` with a pointer to this file.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
struct Input {
    name: String,
    transparent: bool,
    data: Data,
}

#[derive(Debug)]
enum Data {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    kind: VariantKind,
}

#[derive(Debug)]
enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

/// `#[derive(Serialize)]` — implements `serde::Serialize` via `to_value`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse(input) {
        Ok(item) => gen_serialize(&item).parse().unwrap(),
        Err(msg) => compile_error(&msg),
    }
}

/// `#[derive(Deserialize)]` — implements `serde::Deserialize` via `from_value`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse(input) {
        Ok(item) => gen_deserialize(&item).parse().unwrap(),
        Err(msg) => compile_error(&msg),
    }
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse(input: TokenStream) -> Result<Input, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;
    let mut transparent = false;

    // Outer attributes (`#[serde(transparent)]`, doc comments, ...).
    while let Some(TokenTree::Punct(p)) = tokens.get(pos) {
        if p.as_char() != '#' {
            break;
        }
        pos += 1;
        match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                if attr_is_serde_transparent(g.stream())? {
                    transparent = true;
                }
                pos += 1;
            }
            _ => return Err("serde_derive: malformed attribute".into()),
        }
    }

    // Visibility.
    if matches!(tokens.get(pos), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        pos += 1;
        if matches!(tokens.get(pos), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            pos += 1;
        }
    }

    let kind = match tokens.get(pos) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => {
            return Err(format!(
                "serde_derive: expected struct/enum, found {other:?}"
            ))
        }
    };
    pos += 1;

    let name = match tokens.get(pos) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("serde_derive: expected type name, found {other:?}")),
    };
    pos += 1;

    if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde_derive: generic type {name} is not supported by the vendored shim"
        ));
    }

    let data = match (kind.as_str(), tokens.get(pos)) {
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Data::NamedStruct(parse_named_fields(g.stream())?)
        }
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Parenthesis => {
            Data::TupleStruct(count_tuple_fields(g.stream())?)
        }
        ("struct", Some(TokenTree::Punct(p))) if p.as_char() == ';' => Data::UnitStruct,
        ("struct", None) => Data::UnitStruct,
        ("enum", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Data::Enum(parse_variants(g.stream())?)
        }
        (k, other) => {
            return Err(format!(
                "serde_derive: unsupported item shape ({k}, next token {other:?})"
            ))
        }
    };

    Ok(Input {
        name,
        transparent,
        data,
    })
}

/// Inspects a bracket-group attribute body: returns `Ok(true)` for
/// `serde(transparent)`, `Ok(false)` for non-serde attributes, and an error
/// for any other `serde(...)` argument — the shim must not let `rename`,
/// `skip`, `default`, `tag`, ... compile as silent no-ops.
fn attr_is_serde_transparent(stream: TokenStream) -> Result<bool, String> {
    let mut iter = stream.into_iter();
    match (iter.next(), iter.next()) {
        (Some(TokenTree::Ident(id)), Some(TokenTree::Group(args))) if id.to_string() == "serde" => {
            let mut transparent = false;
            for token in args.stream() {
                match &token {
                    TokenTree::Ident(i) if i.to_string() == "transparent" => transparent = true,
                    TokenTree::Punct(p) if p.as_char() == ',' => {}
                    other => {
                        return Err(format!(
                            "serde_derive shim: unsupported serde attribute argument `{other}` \
                             (only `transparent` is implemented; see shims/serde_derive)"
                        ))
                    }
                }
            }
            Ok(transparent)
        }
        _ => Ok(false),
    }
}

/// Skips attributes (`#` + bracket group) at `pos`, rejecting any `serde(...)`
/// attribute: field- and variant-level serde attributes are not implemented,
/// and skipping them silently would change the wire format behind the
/// author's back.
fn skip_attrs(tokens: &[TokenTree], mut pos: usize) -> Result<usize, String> {
    while matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        match tokens.get(pos + 1) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                let mut inner = g.stream().into_iter();
                if matches!(inner.next(), Some(TokenTree::Ident(id)) if id.to_string() == "serde") {
                    return Err(
                        "serde_derive shim: field/variant-level #[serde(...)] attributes are \
                         not implemented (see shims/serde_derive)"
                            .into(),
                    );
                }
                pos += 2;
            }
            _ => break,
        }
    }
    Ok(pos)
}

fn skip_visibility(tokens: &[TokenTree], mut pos: usize) -> usize {
    if matches!(tokens.get(pos), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        pos += 1;
        if matches!(tokens.get(pos), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            pos += 1;
        }
    }
    pos
}

/// Advances past a type, stopping at a `,` that sits outside any `<...>`
/// nesting (groups are atomic in a token stream, so only angle brackets need
/// explicit depth tracking).
fn skip_type(tokens: &[TokenTree], mut pos: usize) -> usize {
    let mut angle_depth = 0i32;
    while let Some(tok) = tokens.get(pos) {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => break,
                _ => {}
            }
        }
        pos += 1;
    }
    pos
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        pos = skip_visibility(&tokens, skip_attrs(&tokens, pos)?);
        let name = match tokens.get(pos) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => {
                return Err(format!(
                    "serde_derive: expected field name, found {other:?}"
                ))
            }
        };
        pos += 1;
        match tokens.get(pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => pos += 1,
            other => return Err(format!("serde_derive: expected ':', found {other:?}")),
        }
        pos = skip_type(&tokens, pos);
        fields.push(name);
        if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            pos += 1;
        }
    }
    Ok(fields)
}

fn count_tuple_fields(stream: TokenStream) -> Result<usize, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return Ok(0);
    }
    let mut count = 0;
    let mut pos = 0;
    while pos < tokens.len() {
        pos = skip_visibility(&tokens, skip_attrs(&tokens, pos)?);
        if pos >= tokens.len() {
            break;
        }
        pos = skip_type(&tokens, pos);
        count += 1;
        if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            pos += 1;
        }
    }
    Ok(count)
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        pos = skip_attrs(&tokens, pos)?;
        let name = match tokens.get(pos) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => {
                return Err(format!(
                    "serde_derive: expected variant name, found {other:?}"
                ))
            }
        };
        pos += 1;
        let kind = match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                pos += 1;
                VariantKind::Tuple(count_tuple_fields(g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                pos += 1;
                VariantKind::Named(parse_named_fields(g.stream())?)
            }
            _ => VariantKind::Unit,
        };
        // Skip an optional explicit discriminant (`= expr`) up to the comma.
        while pos < tokens.len()
            && !matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == ',')
        {
            pos += 1;
        }
        if pos < tokens.len() {
            pos += 1; // the comma
        }
        variants.push(Variant { name, kind });
    }
    Ok(variants)
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_serialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.data {
        Data::NamedStruct(fields) if input.transparent && fields.len() == 1 => {
            format!("::serde::Serialize::to_value(&self.{})", fields[0])
        }
        Data::NamedStruct(fields) => {
            let mut s = String::from("{ let mut __map = ::serde::value::Map::new();\n");
            for f in fields {
                s.push_str(&format!(
                    "__map.insert(::std::string::String::from({f:?}), ::serde::Serialize::to_value(&self.{f}));\n"
                ));
            }
            s.push_str("::serde::value::Value::Object(__map) }");
            s
        }
        Data::TupleStruct(1) if input.transparent => {
            "::serde::Serialize::to_value(&self.0)".to_string()
        }
        Data::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::value::Value::Array(vec![{}])", items.join(", "))
        }
        Data::UnitStruct => "::serde::value::Value::Null".to_string(),
        Data::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "{name}::{vname} => ::serde::value::Value::String(::std::string::String::from({vname:?})),\n"
                    )),
                    VariantKind::Tuple(n) => {
                        let binders: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let payload = if *n == 1 {
                            "::serde::Serialize::to_value(__f0)".to_string()
                        } else {
                            let items: Vec<String> = binders
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!("::serde::value::Value::Array(vec![{}])", items.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{vname}({binds}) => {{ let mut __map = ::serde::value::Map::new(); __map.insert(::std::string::String::from({vname:?}), {payload}); ::serde::value::Value::Object(__map) }},\n",
                            binds = binders.join(", ")
                        ));
                    }
                    VariantKind::Named(fields) => {
                        let mut inner = String::from(
                            "{ let mut __inner = ::serde::value::Map::new();\n",
                        );
                        for f in fields {
                            inner.push_str(&format!(
                                "__inner.insert(::std::string::String::from({f:?}), ::serde::Serialize::to_value({f}));\n"
                            ));
                        }
                        inner.push_str("::serde::value::Value::Object(__inner) }");
                        arms.push_str(&format!(
                            "{name}::{vname} {{ {binds} }} => {{ let mut __map = ::serde::value::Map::new(); __map.insert(::std::string::String::from({vname:?}), {inner}); ::serde::value::Value::Object(__map) }},\n",
                            binds = fields.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "#[automatically_derived]\nimpl ::serde::Serialize for {name} {{\n fn to_value(&self) -> ::serde::value::Value {{ {body} }}\n}}\n"
    )
}

fn de_field(expr: &str) -> String {
    format!("::serde::Deserialize::from_value({expr})?")
}

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.data {
        Data::NamedStruct(fields) if input.transparent && fields.len() == 1 => {
            format!(
                "Ok({name} {{ {f}: {} }})",
                de_field("__value"),
                f = fields[0]
            )
        }
        Data::NamedStruct(fields) => {
            let mut s = format!(
                "let __obj = __value.as_object().ok_or_else(|| ::serde::de::Error::custom(format!(\"expected object for {name}, found {{__value}}\")))?;\nOk({name} {{\n"
            );
            for f in fields {
                s.push_str(&format!(
                    "{f}: {},\n",
                    de_field(&format!(
                        "__obj.get({f:?}).ok_or_else(|| ::serde::de::Error::custom(\"{name}: missing field `{f}`\"))?"
                    ))
                ));
            }
            s.push_str("})");
            s
        }
        Data::TupleStruct(1) if input.transparent => {
            format!("Ok({name}({}))", de_field("__value"))
        }
        Data::TupleStruct(n) => {
            let mut s = format!(
                "let __arr = __value.as_array().ok_or_else(|| ::serde::de::Error::custom(\"expected array for {name}\"))?;\nif __arr.len() != {n} {{ return Err(::serde::de::Error::custom(\"{name}: wrong tuple arity\")); }}\nOk({name}(\n"
            );
            for i in 0..*n {
                s.push_str(&format!("{},\n", de_field(&format!("&__arr[{i}]"))));
            }
            s.push_str("))");
            s
        }
        Data::UnitStruct => format!("Ok({name})"),
        Data::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        unit_arms.push_str(&format!("{vname:?} => Ok({name}::{vname}),\n"));
                        // Also accept the `{ "Variant": null }` object form.
                        data_arms.push_str(&format!("{vname:?} => Ok({name}::{vname}),\n"));
                    }
                    VariantKind::Tuple(1) => data_arms.push_str(&format!(
                        "{vname:?} => Ok({name}::{vname}({})),\n",
                        de_field("__payload")
                    )),
                    VariantKind::Tuple(n) => {
                        let mut arm = format!(
                            "{vname:?} => {{ let __arr = __payload.as_array().ok_or_else(|| ::serde::de::Error::custom(\"expected array payload for {name}::{vname}\"))?;\nif __arr.len() != {n} {{ return Err(::serde::de::Error::custom(\"{name}::{vname}: wrong arity\")); }}\nOk({name}::{vname}(\n"
                        );
                        for i in 0..*n {
                            arm.push_str(&format!("{},\n", de_field(&format!("&__arr[{i}]"))));
                        }
                        arm.push_str(")) },\n");
                        data_arms.push_str(&arm);
                    }
                    VariantKind::Named(fields) => {
                        let mut arm = format!(
                            "{vname:?} => {{ let __obj = __payload.as_object().ok_or_else(|| ::serde::de::Error::custom(\"expected object payload for {name}::{vname}\"))?;\nOk({name}::{vname} {{\n"
                        );
                        for f in fields {
                            arm.push_str(&format!(
                                "{f}: {},\n",
                                de_field(&format!(
                                    "__obj.get({f:?}).ok_or_else(|| ::serde::de::Error::custom(\"{name}::{vname}: missing field `{f}`\"))?"
                                ))
                            ));
                        }
                        arm.push_str("}) },\n");
                        data_arms.push_str(&arm);
                    }
                }
            }
            format!(
                "match __value {{\n\
                 ::serde::value::Value::String(__s) => match __s.as_str() {{\n{unit_arms}\
                 __other => Err(::serde::de::Error::custom(format!(\"unknown variant {{__other}} for {name}\"))),\n}},\n\
                 ::serde::value::Value::Object(__map) => {{\n\
                 let (__tag, __payload) = __map.iter().next().ok_or_else(|| ::serde::de::Error::custom(\"empty variant object for {name}\"))?;\n\
                 match __tag.as_str() {{\n{data_arms}\
                 __other => Err(::serde::de::Error::custom(format!(\"unknown variant {{__other}} for {name}\"))),\n}}\n}},\n\
                 __other => Err(::serde::de::Error::custom(format!(\"expected variant for {name}, found {{__other}}\"))),\n}}"
            )
        }
    };
    format!(
        "#[automatically_derived]\nimpl ::serde::Deserialize for {name} {{\n fn from_value(__value: &::serde::value::Value) -> ::std::result::Result<Self, ::serde::de::Error> {{ {body} }}\n}}\n"
    )
}
