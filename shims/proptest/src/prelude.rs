//! The commonly-imported names, mirroring `proptest::prelude::*`.

pub use crate::strategy::{Just, Strategy};
pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};

/// Namespace alias so `prop::collection::vec(..)` spells work.
pub mod prop {
    pub use crate::collection;
    pub use crate::strategy;
}
