//! Collection strategies (`proptest::collection::{vec, btree_set}`).

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;
use std::collections::BTreeSet;
use std::ops::{Range, RangeInclusive};

/// A size specification: an exact size or an (inclusive) range of sizes.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max_inclusive: usize,
}

impl SizeRange {
    fn sample(&self, rng: &mut StdRng) -> usize {
        if self.min >= self.max_inclusive {
            self.min
        } else {
            rng.gen_range(self.min..=self.max_inclusive)
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            min: n,
            max_inclusive: n,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(!r.is_empty(), "empty collection size range");
        SizeRange {
            min: r.start,
            max_inclusive: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(!r.is_empty(), "empty collection size range");
        SizeRange {
            min: *r.start(),
            max_inclusive: *r.end(),
        }
    }
}

/// `Vec<T>` strategy with element strategy `element` and length in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = self.size.sample(rng);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

/// `BTreeSet<T>` strategy with element strategy `element` and cardinality in
/// `size`. When the element domain is too small to reach the requested
/// cardinality the sampler settles for the largest set it could build.
pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}

/// See [`btree_set`].
#[derive(Debug, Clone)]
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;

    fn sample(&self, rng: &mut StdRng) -> BTreeSet<S::Value> {
        let target = self.size.sample(rng);
        let mut set = BTreeSet::new();
        let mut attempts = 0;
        let max_attempts = target * 20 + 50;
        while set.len() < target && attempts < max_attempts {
            set.insert(self.element.sample(rng));
            attempts += 1;
        }
        set
    }
}
