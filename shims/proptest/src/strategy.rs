//! Strategies: recipes for generating random test inputs.

use rand::rngs::StdRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// A recipe for producing random values of an associated type.
///
/// Unlike real proptest there is no value tree and no shrinking: a strategy is
/// just a sampler.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> MapStrategy<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        MapStrategy { base: self, f }
    }

    /// Builds a second strategy from each generated value and samples it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMapStrategy<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMapStrategy { base: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct MapStrategy<S, F> {
    base: S,
    f: F,
}

impl<S, O, F> Strategy for MapStrategy<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut StdRng) -> O {
        (self.f)(self.base.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMapStrategy<S, F> {
    base: S,
    f: F,
}

impl<S, T, F> Strategy for FlatMapStrategy<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;

    fn sample(&self, rng: &mut StdRng) -> T::Value {
        (self.f)(self.base.sample(rng)).sample(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between strategies of one type (`prop_oneof!`).
#[derive(Debug, Clone)]
pub struct Union<S> {
    options: Vec<S>,
}

impl<S: Strategy> Union<S> {
    /// A union over the given options (must be non-empty).
    pub fn new(options: Vec<S>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<S: Strategy> Strategy for Union<S> {
    type Value = S::Value;

    fn sample(&self, rng: &mut StdRng) -> S::Value {
        let idx = rng.gen_range(0..self.options.len());
        self.options[idx].sample(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut StdRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}
