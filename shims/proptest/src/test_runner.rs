//! Test-runner configuration and failure plumbing.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt;

/// Configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test function.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; 64 keeps the no-shrinking shim fast
        // while still exploring a meaningful slice of the input space.
        ProptestConfig { cases: 64 }
    }
}

/// A failed (or rejected) test case.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
    rejection: bool,
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
            rejection: false,
        }
    }

    /// A rejection (`prop_assume!` not satisfied): the case is skipped rather
    /// than failed, but the runner tracks how many cases were rejected.
    pub fn reject(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
            rejection: true,
        }
    }

    /// Whether this error is a rejection rather than a failure.
    pub fn is_rejection(&self) -> bool {
        self.rejection
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// The result type of a single property-test case body.
pub type TestCaseResult = Result<(), TestCaseError>;

/// The deterministic per-test seed: FNV-1a of the test name. Printed on
/// failure so a failing case is replayable (`StdRng::seed_from_u64(seed)` and
/// re-drawing the reported number of cases reproduces the inputs exactly).
pub fn deterministic_seed(test_name: &str) -> u64 {
    let mut hash: u64 = 0xcbf29ce484222325;
    for byte in test_name.bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x100000001b3);
    }
    hash
}

/// Builds the deterministic per-test RNG (seeded from the test name via
/// [`deterministic_seed`], so every test function explores a different but
/// reproducible stream).
pub fn deterministic_rng(test_name: &str) -> StdRng {
    StdRng::seed_from_u64(deterministic_seed(test_name))
}
