//! Offline stand-in for `proptest`.
//!
//! Supports the macro surface this workspace uses — `proptest!` (with an
//! optional `#![proptest_config(..)]` inner attribute and multiple
//! `pattern in strategy` binders), `prop_assert!`, `prop_assert_eq!` and
//! `prop_oneof!` — plus the [`strategy::Strategy`] combinators `prop_map` /
//! `prop_flat_map`, [`strategy::Just`], range strategies, tuple strategies and
//! [`collection::vec`] / [`collection::btree_set`].
//!
//! Differences from real proptest: failing inputs are *not* shrunk (the
//! failing case is printed as-is), and sampling is deterministic per test
//! function (seeded from the test name) so CI failures reproduce locally.

#![forbid(unsafe_code)]

pub mod collection;
pub mod prelude;
pub mod strategy;
pub mod test_runner;

#[doc(hidden)]
pub use rand as __rand;

/// Defines property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_cases {
    ( ($cfg:expr) $( $(#[$meta:meta])* fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                let mut __rng = $crate::test_runner::deterministic_rng(stringify!($name));
                let mut __rejected: u32 = 0;
                for __case in 0..__config.cases {
                    $( let $pat = $crate::strategy::Strategy::sample(&($strat), &mut __rng); )+
                    let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    match __outcome {
                        ::std::result::Result::Ok(()) => {}
                        ::std::result::Result::Err(__err) if __err.is_rejection() => {
                            __rejected += 1;
                        }
                        ::std::result::Result::Err(__err) => panic!(
                            "proptest '{}' failed at case {}/{}: {}",
                            stringify!($name), __case + 1, __config.cases, __err
                        ),
                    }
                }
                // Mirror real proptest's rejection cap: a property whose
                // assumption is (almost) never satisfiable must not report
                // success having tested nothing.
                if __rejected == __config.cases {
                    panic!(
                        "proptest '{}': all {} cases were rejected by prop_assume! \
                         — the assumption is unsatisfiable under the strategies",
                        stringify!($name), __config.cases
                    );
                }
            }
        )*
    };
}

/// Asserts a condition inside a `proptest!` body, failing the current case
/// (with formatted context) instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)),
            ));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let __l = $left;
        let __r = $right;
        if __l != __r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {} == {} ({:?} != {:?})",
                    stringify!($left), stringify!($right), __l, __r),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let __l = $left;
        let __r = $right;
        if __l != __r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {} == {} ({:?} != {:?}): {}",
                    stringify!($left), stringify!($right), __l, __r, format!($($fmt)+)),
            ));
        }
    }};
}

/// Rejects the current case when the assumption does not hold. Rejected cases
/// are skipped (not re-drawn), but the runner panics if *every* case of a test
/// was rejected, so an unsatisfiable assumption cannot masquerade as a pass.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption not met: ", stringify!($cond)),
            ));
        }
    };
}

/// Chooses uniformly between strategies of the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($strategy),+])
    };
}
