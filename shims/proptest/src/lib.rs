//! Offline stand-in for `proptest`.
//!
//! Supports the macro surface this workspace uses — `proptest!` (with an
//! optional `#![proptest_config(..)]` inner attribute and multiple
//! `pattern in strategy` binders), `prop_assert!`, `prop_assert_eq!` and
//! `prop_oneof!` — plus the [`strategy::Strategy`] combinators `prop_map` /
//! `prop_flat_map`, [`strategy::Just`], range strategies, tuple strategies and
//! [`collection::vec`] / [`collection::btree_set`].
//!
//! Differences from real proptest: failing inputs are *not* shrunk — instead
//! the concrete failing case is printed in copy-pasteable form (`Debug` of
//! every bound input, plus the deterministic seed and case index that
//! regenerate it) — and sampling is deterministic per test function (seeded
//! from the test name) so CI failures reproduce locally. Panics inside the
//! test body are caught, annotated with the same failing-case context on
//! stderr, and re-raised. The one extra requirement over real proptest:
//! every strategy's value type must implement `Debug` (all of real
//! proptest's own strategies do).

#![forbid(unsafe_code)]

pub mod collection;
pub mod prelude;
pub mod strategy;
pub mod test_runner;

#[doc(hidden)]
pub use rand as __rand;

/// Defines property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_cases {
    ( ($cfg:expr) $( $(#[$meta:meta])* fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                let __seed = $crate::test_runner::deterministic_seed(stringify!($name));
                let mut __rng = $crate::test_runner::deterministic_rng(stringify!($name));
                let mut __rejected: u32 = 0;
                for __case in 0..__config.cases {
                    // Capture every sampled input in `Debug` form *before* the
                    // body runs, so both failures and panics can report the
                    // concrete failing case.
                    let mut __inputs: ::std::vec::Vec<::std::string::String> =
                        ::std::vec::Vec::new();
                    $(
                        let $pat = {
                            let __value = $crate::strategy::Strategy::sample(&($strat), &mut __rng);
                            __inputs.push(::std::format!(
                                "{} = {:?}", stringify!($pat), &__value
                            ));
                            __value
                        };
                    )+
                    let __replay = ::std::format!(
                        "failing case:\n    {}\n  replay: seed {:#018x} \
                         (FNV-1a of the test name), case index {} — \
                         `StdRng::seed_from_u64({:#018x})` and re-draw the \
                         strategies {} time(s), or paste the inputs above \
                         into a unit test",
                        __inputs.join("\n    "), __seed, __case, __seed, __case + 1
                    );
                    let __outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(
                            || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                                $body ::std::result::Result::Ok(())
                            }
                        )
                    );
                    let __outcome = match __outcome {
                        ::std::result::Result::Ok(__inner) => __inner,
                        ::std::result::Result::Err(__panic) => {
                            // The body panicked (e.g. an unwrap): annotate the
                            // panic with the failing case, then re-raise it.
                            ::std::eprintln!(
                                "proptest '{}' panicked at case {}/{}; {}",
                                stringify!($name), __case + 1, __config.cases, __replay
                            );
                            ::std::panic::resume_unwind(__panic);
                        }
                    };
                    match __outcome {
                        ::std::result::Result::Ok(()) => {}
                        ::std::result::Result::Err(__err) if __err.is_rejection() => {
                            __rejected += 1;
                        }
                        ::std::result::Result::Err(__err) => panic!(
                            "proptest '{}' failed at case {}/{}: {}\n  {}",
                            stringify!($name), __case + 1, __config.cases, __err, __replay
                        ),
                    }
                }
                // Mirror real proptest's rejection cap: a property whose
                // assumption is (almost) never satisfiable must not report
                // success having tested nothing.
                if __rejected == __config.cases {
                    panic!(
                        "proptest '{}': all {} cases were rejected by prop_assume! \
                         — the assumption is unsatisfiable under the strategies",
                        stringify!($name), __config.cases
                    );
                }
            }
        )*
    };
}

/// Asserts a condition inside a `proptest!` body, failing the current case
/// (with formatted context) instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)),
            ));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let __l = $left;
        let __r = $right;
        if __l != __r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {} == {} ({:?} != {:?})",
                    stringify!($left), stringify!($right), __l, __r),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let __l = $left;
        let __r = $right;
        if __l != __r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {} == {} ({:?} != {:?}): {}",
                    stringify!($left), stringify!($right), __l, __r, format!($($fmt)+)),
            ));
        }
    }};
}

/// Rejects the current case when the assumption does not hold. Rejected cases
/// are skipped (not re-drawn), but the runner panics if *every* case of a test
/// was rejected, so an unsatisfiable assumption cannot masquerade as a pass.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption not met: ", stringify!($cond)),
            ));
        }
    };
}

/// Chooses uniformly between strategies of the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($strategy),+])
    };
}
