//! The shim must report the concrete failing case (inputs + seed) in a
//! copy-pasteable form, both for `prop_assert!` failures and for panics
//! inside the test body — the no-shrinking replacement for real proptest's
//! minimised counterexamples.

use proptest::{prop_assert, proptest};

proptest! {
    // No `#[test]` attribute: these stay plain functions so the real tests
    // below can call them under `catch_unwind` and inspect the panic payload.
    fn always_failing_property(x in 10u32..20, pair in (0u32..5, 100u32..105)) {
        let _ = pair;
        prop_assert!(x >= 20, "x is always below 20");
    }

    // The unconditional panic makes the macro's per-case bookkeeping after
    // the body unreachable — exactly the scenario under test.
    #[allow(unreachable_code)]
    fn always_panicking_property(x in 0u32..5) {
        let _ = x;
        panic!("boom from the body");
    }

    fn passing_property(x in 0u32..100) {
        prop_assert!(x < 100);
    }
}

fn panic_message(err: Box<dyn std::any::Any + Send>) -> String {
    err.downcast_ref::<String>()
        .cloned()
        .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_default()
}

#[test]
fn failure_reports_inputs_seed_and_case_index() {
    let err = std::panic::catch_unwind(always_failing_property).unwrap_err();
    let msg = panic_message(err);
    // The concrete inputs, one per binder, in Debug form.
    assert!(msg.contains("failing case:"), "{msg}");
    assert!(msg.contains("x = 1"), "{msg}"); // some value in 10..20
    assert!(msg.contains("pair = ("), "{msg}");
    // The replay recipe: deterministic seed plus case index.
    assert!(msg.contains("replay: seed 0x"), "{msg}");
    assert!(msg.contains("case index 0"), "{msg}");
    assert!(msg.contains("seed_from_u64"), "{msg}");
    // The original assertion context is still there.
    assert!(msg.contains("x is always below 20"), "{msg}");
    assert!(
        msg.contains("failed at case 1/"),
        "case counter missing: {msg}"
    );
}

#[test]
fn body_panics_keep_their_payload() {
    // The failing-case context goes to stderr; the original panic payload
    // must survive unchanged so `#[should_panic(expected = ...)]` upstream
    // keeps working.
    let err = std::panic::catch_unwind(always_panicking_property).unwrap_err();
    assert_eq!(panic_message(err), "boom from the body");
}

#[test]
fn passing_properties_stay_silent() {
    passing_property();
}
