//! Offline stand-in for `criterion`.
//!
//! Implements the API surface the bench suite uses — `Criterion`,
//! `benchmark_group` / `bench_function` / `bench_with_input`, `BenchmarkId`,
//! `black_box`, `criterion_group!` and `criterion_main!` — with a simple
//! wall-clock measurement loop (warm-up, then a fixed sample budget, report
//! the mean, minimum and the p50/p99 nearest-rank percentiles). No
//! regression statistics, no HTML reports, but benches stay runnable and
//! comparable between commits on the same machine, and the percentiles give
//! the tail-latency signal the overload experiments gate on.
//!
//! Two environment variables integrate the shim with the experiment harness:
//!
//! * `CRITERION_JSON=<path>` — append one JSON object per benchmark
//!   (`{"bench", "mean_ns", "min_ns", "p50_ns", "p99_ns", "samples"}`) to
//!   `<path>`, which the `experiments` driver folds into
//!   `bench_results.json` via `--bench-json`;
//! * `CRITERION_SAMPLES=<n>` — override every benchmark's sample budget
//!   (used by CI to keep the `cargo bench` pass cheap).

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-iteration timing collector handed to bench closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_budget: usize,
}

impl Bencher {
    /// Times `routine`, running one warm-up call and then `sample_budget`
    /// measured calls.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        black_box(routine()); // warm-up
        for _ in 0..self.sample_budget {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

/// Declared per-iteration workload of a benchmark group, used to derive
/// throughput from the measured mean (API parity with real criterion's
/// `Throughput`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

impl Throughput {
    /// `(unit label, amount per iteration)`.
    fn parts(self) -> (&'static str, u64) {
        match self {
            Throughput::Elements(n) => ("elems", n),
            Throughput::Bytes(n) => ("bytes", n),
        }
    }
}

/// Nearest-rank percentile of an ascending-sorted sample list.
fn percentile(sorted: &[Duration], q: f64) -> Duration {
    debug_assert!(!sorted.is_empty());
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn report(label: &str, samples: &[Duration], throughput: Option<Throughput>) {
    if samples.is_empty() {
        println!("{label:<48} (no samples)");
        return;
    }
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let min = samples.iter().min().copied().unwrap_or_default();
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let p50 = percentile(&sorted, 0.50);
    let p99 = percentile(&sorted, 0.99);
    // A mean below the timer resolution would divide to infinity and poison
    // the JSON record; such benchmarks simply report no throughput.
    let rate = throughput.filter(|_| mean.as_secs_f64() > 0.0).map(|t| {
        let (unit, amount) = t.parts();
        (unit, amount as f64 / mean.as_secs_f64())
    });
    match rate {
        Some((unit, per_sec)) => println!(
            "{label:<48} mean {mean:>12?}   min {min:>12?}   p50 {p50:>12?}   p99 {p99:>12?}   {per_sec:>12.0} {unit}/s   ({} samples)",
            samples.len()
        ),
        None => println!(
            "{label:<48} mean {mean:>12?}   min {min:>12?}   p50 {p50:>12?}   p99 {p99:>12?}   ({} samples)",
            samples.len()
        ),
    }
    append_json_record(label, samples, mean, min, p50, p99, rate);
}

/// With `CRITERION_JSON=<path>` set, appends one JSON-lines record per
/// benchmark so the experiment harness can collate micro-bench baselines into
/// `bench_results.json`. Groups that declared a [`Throughput`] additionally
/// get a `"throughput_per_sec"` / `"throughput_unit"` pair derived from the
/// mean.
fn append_json_record(
    label: &str,
    samples: &[Duration],
    mean: Duration,
    min: Duration,
    p50: Duration,
    p99: Duration,
    rate: Option<(&'static str, f64)>,
) {
    let Ok(path) = std::env::var("CRITERION_JSON") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    let throughput = rate
        .map(|(unit, per_sec)| {
            format!(", \"throughput_per_sec\": {per_sec:.1}, \"throughput_unit\": \"{unit}\"")
        })
        .unwrap_or_default();
    let record = format!(
        "{{\"bench\": \"{}\", \"mean_ns\": {}, \"min_ns\": {}, \"p50_ns\": {}, \"p99_ns\": {}, \"samples\": {}{}}}\n",
        json_escape(label),
        mean.as_nanos(),
        min.as_nanos(),
        p50.as_nanos(),
        p99.as_nanos(),
        samples.len(),
        throughput
    );
    let result = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut file| std::io::Write::write_all(&mut file, record.as_bytes()));
    if let Err(error) = result {
        eprintln!("criterion shim: cannot append to {path}: {error}");
    }
}

fn json_escape(text: &str) -> String {
    let mut escaped = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '"' => escaped.push_str("\\\""),
            '\\' => escaped.push_str("\\\\"),
            c if (c as u32) < 0x20 => escaped.push_str(&format!("\\u{:04x}", c as u32)),
            c => escaped.push(c),
        }
    }
    escaped
}

/// `CRITERION_SAMPLES` overrides every sample budget when set (CI keeps the
/// bench pass cheap with a small value).
fn sample_budget_override() -> Option<usize> {
    std::env::var("CRITERION_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
}

fn run_one<F: FnMut(&mut Bencher)>(
    label: &str,
    sample_budget: usize,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut bencher = Bencher {
        samples: Vec::new(),
        sample_budget: sample_budget_override().unwrap_or(sample_budget),
    };
    f(&mut bencher);
    report(label, &bencher.samples, throughput);
}

/// The benchmark driver.
pub struct Criterion {
    sample_budget: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_budget: 10 }
    }
}

impl Criterion {
    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_one(id, self.sample_budget, None, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_budget: self.sample_budget,
            throughput: None,
            _criterion: self,
        }
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_budget: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of measured samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_budget = n.max(1);
        self
    }

    /// Declares the per-iteration workload of subsequent benchmarks in the
    /// group; reported as `<unit>/s` and recorded in the `CRITERION_JSON`
    /// baselines.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<I: IntoBenchmarkId, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into_benchmark_id().label);
        run_one(&label, self.sample_budget, self.throughput, f);
        self
    }

    /// Runs one parameterised benchmark in the group.
    pub fn bench_with_input<I: IntoBenchmarkId, T: ?Sized, F: FnMut(&mut Bencher, &T)>(
        &mut self,
        id: I,
        input: &T,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into_benchmark_id().label);
        run_one(&label, self.sample_budget, self.throughput, |b| f(b, input));
        self
    }

    /// Ends the group (a no-op in the shim; kept for API parity).
    pub fn finish(self) {}
}

/// An identifier for a (possibly parameterised) benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Just the parameter (the group supplies the name).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Conversion into [`BenchmarkId`] accepted by the `bench_*` methods.
pub trait IntoBenchmarkId {
    /// Converts to a concrete id.
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            label: self.to_string(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { label: self }
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
