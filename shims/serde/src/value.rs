//! The JSON-compatible value tree used as the serialisation interchange
//! format, mirroring `serde_json::Value` closely enough for this workspace.

use std::borrow::Borrow;
use std::collections::BTreeMap;
use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Number(Number),
    /// A string.
    String(String),
    /// An ordered sequence of values.
    Array(Vec<Value>),
    /// A string-keyed object.
    Object(Map<String, Value>),
}

impl Value {
    /// Returns the string slice if this is a `Value::String`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the bool if this is a `Value::Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Returns the elements if this is a `Value::Array`.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Returns the map if this is a `Value::Object`.
    pub fn as_object(&self) -> Option<&Map<String, Value>> {
        match self {
            Value::Object(map) => Some(map),
            _ => None,
        }
    }

    /// Numeric view as `f64` (any number variant).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// Numeric view as `u64` (integral, non-negative numbers only).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// Numeric view as `i64` (integral numbers only).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// Indexes into an object by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|map| map.get(key))
    }

    /// True for `Value::Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

/// A JSON number: a non-negative integer, a negative integer, or a float.
#[derive(Debug, Clone, Copy)]
pub struct Number {
    repr: Repr,
}

#[derive(Debug, Clone, Copy)]
enum Repr {
    U64(u64),
    I64(i64),
    F64(f64),
}

impl Number {
    /// A number holding a non-negative integer.
    pub fn from_u64(n: u64) -> Self {
        Number { repr: Repr::U64(n) }
    }

    /// A number holding a signed integer (normalised to the unsigned repr when
    /// non-negative so `5i64` and `5u64` compare equal).
    pub fn from_i64(n: i64) -> Self {
        if n >= 0 {
            Number::from_u64(n as u64)
        } else {
            Number { repr: Repr::I64(n) }
        }
    }

    /// A number holding a float.
    pub fn from_f64(n: f64) -> Self {
        Number { repr: Repr::F64(n) }
    }

    /// The value as `f64`.
    pub fn as_f64(&self) -> f64 {
        match self.repr {
            Repr::U64(n) => n as f64,
            Repr::I64(n) => n as f64,
            Repr::F64(n) => n,
        }
    }

    /// The value as `u64` when integral and in range.
    pub fn as_u64(&self) -> Option<u64> {
        match self.repr {
            Repr::U64(n) => Some(n),
            Repr::I64(n) => u64::try_from(n).ok(),
            Repr::F64(n) if n >= 0.0 && n.fract() == 0.0 && n <= u64::MAX as f64 => Some(n as u64),
            Repr::F64(_) => None,
        }
    }

    /// Whether the number is finite (always true for the integer reprs).
    pub fn is_finite(&self) -> bool {
        match self.repr {
            Repr::F64(n) => n.is_finite(),
            _ => true,
        }
    }

    /// The value as `i64` when integral and in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self.repr {
            Repr::U64(n) => i64::try_from(n).ok(),
            Repr::I64(n) => Some(n),
            Repr::F64(n) if n.fract() == 0.0 && n >= i64::MIN as f64 && n <= i64::MAX as f64 => {
                Some(n as i64)
            }
            Repr::F64(_) => None,
        }
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        match (self.repr, other.repr) {
            (Repr::U64(a), Repr::U64(b)) => a == b,
            (Repr::I64(a), Repr::I64(b)) => a == b,
            (Repr::F64(a), Repr::F64(b)) => a == b,
            _ => self.as_f64() == other.as_f64(),
        }
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.repr {
            Repr::U64(n) => write!(f, "{n}"),
            Repr::I64(n) => write!(f, "{n}"),
            // Rust's shortest round-trip float formatting; integral floats get
            // an explicit ".0" so they parse back as floats.
            Repr::F64(n) if !n.is_finite() => write!(f, "null"),
            Repr::F64(n) if n.fract() == 0.0 && n.abs() < 1e15 => write!(f, "{n:.1}"),
            Repr::F64(n) => write!(f, "{n}"),
        }
    }
}

/// An insertion-sorted (BTree-backed) string-keyed object map.
///
/// Generic over `K`/`V` purely so the `serde_json::Map<String, Value>` spelling
/// used by downstream code compiles; it is only ever used with those params.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Map<K = String, V = Value>
where
    K: Ord,
{
    inner: BTreeMap<K, V>,
}

impl<K: Ord, V> Map<K, V> {
    /// An empty map.
    pub fn new() -> Self {
        Map {
            inner: BTreeMap::new(),
        }
    }

    /// Inserts a key/value pair, returning the previous value for the key.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        self.inner.insert(key, value)
    }

    /// Looks up a key.
    pub fn get<Q>(&self, key: &Q) -> Option<&V>
    where
        K: Borrow<Q>,
        Q: Ord + ?Sized,
    {
        self.inner.get(key)
    }

    /// True if the key is present.
    pub fn contains_key<Q>(&self, key: &Q) -> bool
    where
        K: Borrow<Q>,
        Q: Ord + ?Sized,
    {
        self.inner.contains_key(key)
    }

    /// Removes a key, returning its value.
    pub fn remove<Q>(&mut self, key: &Q) -> Option<V>
    where
        K: Borrow<Q>,
        Q: Ord + ?Sized,
    {
        self.inner.remove(key)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Iterates entries in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        self.inner.iter()
    }

    /// Iterates keys in order.
    pub fn keys(&self) -> impl Iterator<Item = &K> {
        self.inner.keys()
    }

    /// Iterates values in key order.
    pub fn values(&self) -> impl Iterator<Item = &V> {
        self.inner.values()
    }
}

impl<K: Ord, V> FromIterator<(K, V)> for Map<K, V> {
    fn from_iter<I: IntoIterator<Item = (K, V)>>(iter: I) -> Self {
        Map {
            inner: iter.into_iter().collect(),
        }
    }
}

impl<K: Ord, V> IntoIterator for Map<K, V> {
    type Item = (K, V);
    type IntoIter = std::collections::btree_map::IntoIter<K, V>;

    fn into_iter(self) -> Self::IntoIter {
        self.inner.into_iter()
    }
}

impl<'a, K: Ord, V> IntoIterator for &'a Map<K, V> {
    type Item = (&'a K, &'a V);
    type IntoIter = std::collections::btree_map::Iter<'a, K, V>;

    fn into_iter(self) -> Self::IntoIter {
        self.inner.iter()
    }
}

// --- JSON rendering -------------------------------------------------------

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl Value {
    /// Renders compact JSON into `out`.
    pub fn write_compact(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(n) => out.push_str(&n.to_string()),
            Value::String(s) => escape_into(out, s),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Value::Object(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape_into(out, k);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    /// Renders two-space-indented JSON into `out`.
    pub fn write_pretty(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent);
        let pad_in = "  ".repeat(indent + 1);
        match self {
            Value::Array(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    out.push_str(&pad_in);
                    item.write_pretty(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&pad);
                out.push(']');
            }
            Value::Object(map) if !map.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    out.push_str(&pad_in);
                    escape_into(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&pad);
                out.push('}');
            }
            other => other.write_compact(out),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write_compact(&mut out);
        f.write_str(&out)
    }
}
