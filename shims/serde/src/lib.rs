//! Offline stand-in for the `serde` crate.
//!
//! The build environment of this repository has no access to crates.io, so the
//! workspace vendors a minimal serialisation framework with the same *surface*
//! as the subset of serde the simulator uses:
//!
//! * `#[derive(Serialize, Deserialize)]` on structs and enums (including the
//!   `#[serde(transparent)]` newtype attribute),
//! * blanket implementations for the primitive types, `String`, `Option`,
//!   `Vec`, tuples, arrays, and the standard map/set collections,
//! * a JSON-compatible [`value::Value`] data model that `serde_json` (also
//!   vendored) renders and parses.
//!
//! Unlike real serde there is no visitor machinery: serialisation goes through
//! an intermediate [`value::Value`] tree. That is entirely sufficient for the
//! simulator's needs (config files, fault traces, experiment reports) and
//! keeps the implementation small and auditable.

#![forbid(unsafe_code)]

pub mod de;
pub mod value;

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::hash::Hash;

use de::Error;
use value::{Map, Number, Value};

/// A type that can be turned into a JSON-compatible [`Value`] tree.
///
/// This is the shim's analogue of `serde::Serialize`; the derive macro
/// implements it field-by-field.
pub trait Serialize {
    /// Converts `self` into a [`Value`].
    fn to_value(&self) -> Value;
}

/// A type that can be reconstructed from a JSON-compatible [`Value`] tree.
///
/// This is the shim's analogue of `serde::Deserialize`; the derive macro
/// implements it field-by-field.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a [`Value`], reporting a descriptive error when the
    /// shape does not match.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------------
// Serialize implementations
// ---------------------------------------------------------------------------

macro_rules! impl_ser_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::from_u64(*self as u64))
            }
        }
    )*};
}
impl_ser_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_ser_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::from_i64(*self as i64))
            }
        }
    )*};
}
impl_ser_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::from_f64(*self))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::from_f64(*self as f64))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for HashSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

// Maps serialise as an array of `[key, value]` pairs. JSON objects only allow
// string keys while the simulator keys maps by id newtypes; the pair encoding
// round-trips every key type uniformly.
impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Array(
            self.iter()
                .map(|(k, v)| Value::Array(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }
}

impl<K: Serialize, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Array(
            self.iter()
                .map(|(k, v)| Value::Array(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }
}

macro_rules! impl_ser_tuple {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
    )*};
}
impl_ser_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

// ---------------------------------------------------------------------------
// Deserialize implementations
// ---------------------------------------------------------------------------

macro_rules! impl_de_unsigned {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let n = value
                    .as_u64()
                    .ok_or_else(|| Error::custom(format!(
                        "expected unsigned integer, found {value}"
                    )))?;
                <$t>::try_from(n).map_err(|_| {
                    Error::custom(format!("integer {n} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}
impl_de_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_de_signed {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let n = value
                    .as_i64()
                    .ok_or_else(|| Error::custom(format!(
                        "expected integer, found {value}"
                    )))?;
                <$t>::try_from(n).map_err(|_| {
                    Error::custom(format!("integer {n} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}
impl_de_signed!(i8, i16, i32, i64, isize);

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_f64()
            .ok_or_else(|| Error::custom(format!("expected number, found {value}")))
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        f64::from_value(value).map(|f| f as f32)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_bool()
            .ok_or_else(|| Error::custom(format!("expected bool, found {value}")))
    }
}

impl Deserialize for char {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let s = String::from_value(value)?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom(format!(
                "expected single character, found {s:?}"
            ))),
        }
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::custom(format!("expected string, found {value}")))
    }
}

impl Deserialize for () {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(()),
            other => Err(Error::custom(format!("expected null, found {other}"))),
        }
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        T::from_value(value).map(Box::new)
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

fn expect_array<'v>(value: &'v Value, what: &str) -> Result<&'v [Value], Error> {
    value
        .as_array()
        .ok_or_else(|| Error::custom(format!("expected array for {what}, found {value}")))
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        expect_array(value, "sequence")?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let items = Vec::<T>::from_value(value)?;
        let len = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| Error::custom(format!("expected array of length {N}, found {len}")))
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        expect_array(value, "set")?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Deserialize + Hash + Eq> Deserialize for HashSet<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        expect_array(value, "set")?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

fn entry_pair<K: Deserialize, V: Deserialize>(entry: &Value) -> Result<(K, V), Error> {
    let pair = expect_array(entry, "map entry")?;
    if pair.len() != 2 {
        return Err(Error::custom(format!(
            "expected [key, value] pair, found array of length {}",
            pair.len()
        )));
    }
    Ok((K::from_value(&pair[0])?, V::from_value(&pair[1])?))
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        expect_array(value, "map")?.iter().map(entry_pair).collect()
    }
}

impl<K: Deserialize + Hash + Eq, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        expect_array(value, "map")?.iter().map(entry_pair).collect()
    }
}

macro_rules! impl_de_tuple {
    ($(($len:expr; $($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let items = expect_array(value, "tuple")?;
                if items.len() != $len {
                    return Err(Error::custom(format!(
                        "expected tuple of length {}, found {}", $len, items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}
impl_de_tuple! {
    (1; A.0)
    (2; A.0, B.1)
    (3; A.0, B.1, C.2)
    (4; A.0, B.1, C.2, D.3)
    (5; A.0, B.1, C.2, D.3, E.4)
    (6; A.0, B.1, C.2, D.3, E.4, F.5)
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

impl Deserialize for Map<String, Value> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Object(map) => Ok(map.clone()),
            other => Err(Error::custom(format!("expected object, found {other}"))),
        }
    }
}
