//! Deserialisation error type shared by the `serde` and `serde_json` shims.

use std::fmt;

/// A deserialisation (or serialisation) error with a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    /// Creates an error from any displayable message.
    pub fn custom(message: impl fmt::Display) -> Self {
        Error {
            message: message.to_string(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}
