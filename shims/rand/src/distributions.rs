//! Distributions: the [`Distribution`] trait, [`Standard`], [`Uniform`] and
//! the range-sampling plumbing behind `Rng::gen_range`.

use crate::Rng;

/// A distribution over values of type `T`.
pub trait Distribution<T> {
    /// Draws one sample using `rng`.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "natural" distribution of a type: uniform in `[0, 1)` for floats,
/// uniform over the whole value range for integers, fair coin for `bool`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

impl Distribution<f64> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Distribution<u64> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Distribution<u32> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Distribution<usize> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

impl Distribution<u8> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u8 {
        (rng.next_u64() >> 56) as u8
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Uniform distribution over a half-open `[low, high)` interval.
#[derive(Debug, Clone, Copy)]
pub struct Uniform<T> {
    low: T,
    high: T,
}

impl<T: Copy> Uniform<T> {
    /// Uniform over `[low, high)`.
    pub fn new(low: T, high: T) -> Self {
        Uniform { low, high }
    }
}

impl Distribution<f64> for Uniform<f64> {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let unit: f64 = Standard.sample(rng);
        self.low + unit * (self.high - self.low)
    }
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for Uniform<$t> {
            fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> $t {
                uniform::sample_int_range(rng, self.low as i128, self.high as i128) as $t
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

pub mod uniform {
    //! Range sampling used by `Rng::gen_range`.

    use super::Standard;
    use crate::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Uniformly samples an integer from `[low, high)` by rejection sampling
    /// over the smallest power of two covering the span (no modulo bias, zero
    /// rejections for power-of-two spans, a single 64-bit draw per attempt for
    /// any span that fits in 64 bits — i.e. every range this workspace uses).
    pub fn sample_int_range<R: Rng + ?Sized>(rng: &mut R, low: i128, high: i128) -> i128 {
        assert!(low < high, "gen_range called with an empty range");
        let span = (high - low) as u128;
        // Mask with exactly enough bits to represent span - 1.
        let mask = span
            .checked_next_power_of_two()
            .map_or(u128::MAX, |p| p - 1);
        if span <= u64::MAX as u128 {
            let mask = mask as u64;
            loop {
                let candidate = rng.next_u64() & mask;
                if (candidate as u128) < span {
                    return low + candidate as i128;
                }
            }
        }
        loop {
            let wide = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
            let candidate = wide & mask;
            if candidate < span {
                return low + candidate as i128;
            }
        }
    }

    /// A range that `Rng::gen_range` can sample from.
    pub trait SampleRange<T> {
        /// Draws one uniform sample from the range.
        fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
    }

    macro_rules! impl_sample_range_int {
        ($($t:ty),*) => {$(
            impl SampleRange<$t> for Range<$t> {
                fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                    sample_int_range(rng, self.start as i128, self.end as i128) as $t
                }
            }
            impl SampleRange<$t> for RangeInclusive<$t> {
                fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                    sample_int_range(rng, *self.start() as i128, *self.end() as i128 + 1) as $t
                }
            }
        )*};
    }
    impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl SampleRange<f64> for Range<f64> {
        fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
            assert!(
                self.start < self.end,
                "gen_range called with an empty range"
            );
            let unit: f64 = super::Distribution::sample(&Standard, rng);
            self.start + unit * (self.end - self.start)
        }
    }

    impl SampleRange<f32> for Range<f32> {
        fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> f32 {
            assert!(
                self.start < self.end,
                "gen_range called with an empty range"
            );
            let unit: f32 = super::Distribution::sample(&Standard, rng);
            self.start + unit * (self.end - self.start)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::uniform::sample_int_range;
    use crate::rngs::StdRng;
    use crate::{Rng, SeedableRng};

    #[test]
    fn int_ranges_cover_every_value_without_bias_holes() {
        let mut rng = StdRng::seed_from_u64(1);
        // Power-of-two and non-power-of-two spans, including span 9 (the case
        // where an off-by-one mask would silently exclude the top value).
        for span in [1i128, 2, 6, 8, 9, 17, 100] {
            let mut seen = vec![false; span as usize];
            for _ in 0..(span as usize * 200) {
                let v = sample_int_range(&mut rng, 0, span);
                assert!((0..span).contains(&v), "{v} outside [0, {span})");
                seen[v as usize] = true;
            }
            assert!(seen.iter().all(|&s| s), "not all of [0, {span}) sampled");
        }
    }

    #[test]
    fn gen_range_handles_open_and_inclusive_ranges() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let open = rng.gen_range(10usize..13);
            assert!((10..13).contains(&open));
            let inclusive = rng.gen_range(-3i64..=3);
            assert!((-3..=3).contains(&inclusive));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }
}
