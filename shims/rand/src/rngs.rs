//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// The standard deterministic generator: xoshiro256++.
///
/// Not the same stream as real rand's `StdRng` (ChaCha12), but every consumer
/// in this workspace only relies on determinism for a given seed, not on a
/// specific stream.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks(8).enumerate() {
            let mut bytes = [0u8; 8];
            bytes.copy_from_slice(chunk);
            s[i] = u64::from_le_bytes(bytes);
        }
        // xoshiro must not start from the all-zero state.
        if s.iter().all(|&w| w == 0) {
            s = [
                0x9e3779b97f4a7c15,
                0xbf58476d1ce4e5b9,
                0x94d049bb133111eb,
                0x2545f4914f6cdd1d,
            ];
        }
        StdRng { s }
    }
}
