//! Offline stand-in for the `rand` crate (0.8-compatible surface).
//!
//! Provides the subset this workspace uses: [`rngs::StdRng`] (xoshiro256++,
//! seeded deterministically via SplitMix64), the [`Rng`] / [`RngCore`] /
//! [`SeedableRng`] traits, [`seq::SliceRandom`] and
//! [`distributions::Distribution`]. Statistical quality is more than adequate
//! for simulation; this is **not** a cryptographic generator.

#![forbid(unsafe_code)]

pub mod distributions;
pub mod rngs;
pub mod seq;

use distributions::{Distribution, Standard};

/// The core of a random number generator: a source of uniform `u64`s.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing convenience methods layered over [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the [`Standard`] distribution
    /// (uniform in `[0, 1)` for floats, uniform over all values for integers).
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Samples uniformly from a range (`low..high` or `low..=high`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::uniform::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool called with p = {p}");
        self.gen::<f64>() < p
    }

    /// Samples from an explicit distribution.
    fn sample<T, D: Distribution<T>>(&mut self, distr: D) -> T {
        distr.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator that can be constructed from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64` by expanding it with SplitMix64,
    /// matching rand 0.8 semantics of a convenient deterministic seed.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64 — used for seed expansion.
pub(crate) struct SplitMix64 {
    pub(crate) state: u64,
}

impl SplitMix64 {
    pub(crate) fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }
}
