//! Sequence helpers (`SliceRandom`).

use crate::distributions::uniform::sample_int_range;
use crate::Rng;

/// Random operations on slices.
pub trait SliceRandom {
    /// The element type.
    type Item;

    /// Shuffles the slice in place (Fisher–Yates).
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

    /// Picks a uniformly random element, or `None` when empty.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = sample_int_range(rng, 0, i as i128 + 1) as usize;
            self.swap(i, j);
        }
    }

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            let idx = sample_int_range(rng, 0, self.len() as i128) as usize;
            self.get(idx)
        }
    }
}
