//! Root crate of the InfiniteHBD reproduction workspace.
//!
//! This package exists to own the workspace-level integration tests
//! (`tests/integration_*.rs`) and the walkthrough examples (`examples/`);
//! all functionality lives in the crates under `crates/` and is re-exported
//! through the [`infinitehbd`] umbrella crate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use infinitehbd;
