//! Whole-system integration tests: device -> topology -> orchestration ->
//! cluster metrics, exercised together through the umbrella API.

use infinitehbd::prelude::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn cluster_study_reproduces_the_architecture_ranking() {
    let study = ClusterStudy::new(
        ClusterConfig::new(360, NodeSize::Four, 16, 4).unwrap(),
        32,
        Seconds::from_days(60.0),
        99,
    )
    .unwrap();
    let reports = study.run(60);
    let waste = |name: &str| {
        reports
            .iter()
            .find(|r| r.architecture == name)
            .unwrap()
            .mean_waste_ratio
    };
    assert!(waste("InfiniteHBD(K=3)") <= waste("Big-Switch") + 1e-9);
    assert!(waste("InfiniteHBD(K=2)") < waste("NVL-72"));
    assert!(waste("InfiniteHBD(K=2)") < waste("TPUv4"));
    assert!(waste("InfiniteHBD(K=2)") < waste("SiP-Ring"));
}

#[test]
fn ocstrx_failover_keeps_a_ring_connected() {
    // Device-level fail-over (mark primary down, switch to backup) corresponds
    // to the topology-level bypass: a single faulty node does not break the
    // K-hop ring's healthy segment.
    let mut bundle = Bundle::for_6_4_tbps_gpu();
    bundle.mark_path_down(PathId::External1);
    assert!(bundle.activate_backup().is_ok());
    assert_eq!(bundle.delivered_bandwidth(), Gbps(6400.0));

    let ring = KHopRing::new(64, 4, 2).unwrap();
    let faults = FaultSet::from_nodes([NodeId(13)]);
    let segments = ring.healthy_segments(&faults);
    assert_eq!(segments.len(), 1);
    assert_eq!(segments[0].len(), 63);
}

#[test]
fn binary_exchange_is_the_alltoall_infinitehbd_would_run() {
    // Appendix G: Binary Exchange is both correct (data movement) and cheaper
    // than the naive ring AllToAll, even after paying the OCSTrx fast-switch
    // latency every round.
    let mut sim = infinitehbd::collective::BinaryExchangeSim::new(64);
    sim.run();
    assert!(sim.is_complete());
    let link = AlphaBeta::hbd_default();
    let reconfig = Seconds(80e-6);
    let be = AllToAllAlgorithm::BinaryExchange.cost(64, Bytes(4e6), &link, reconfig);
    let ring = AllToAllAlgorithm::RingShift.cost(64, Bytes(4e6), &link, Seconds::ZERO);
    assert!(be.cost.time.value() < ring.cost.time.value());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn waste_ratio_is_always_a_valid_fraction(
        nodes in 8usize..200,
        k in 1usize..4,
        fault_ratio in 0.0f64..0.4,
        tp_exp in 1u32..5,
        seed in 0u64..1000,
    ) {
        let tp = 4usize << tp_exp; // 8..64 GPUs
        let ring = KHopRing::new(nodes, 4, k).unwrap();
        let model = IidFaultModel::new(nodes, fault_ratio);
        let faults = FaultSet::from_nodes(model.sample_exact(&mut StdRng::seed_from_u64(seed)));
        let report = ring.utilization(&faults, tp);
        prop_assert!(report.usable_gpus + report.faulty_gpus + report.wasted_healthy_gpus == report.total_gpus);
        prop_assert!(report.waste_ratio() >= 0.0 && report.waste_ratio() <= 1.0);
        prop_assert!(report.usable_gpus.is_multiple_of(tp));
    }

    #[test]
    fn infinitehbd_never_wastes_more_than_the_ideal_plus_bound(
        nodes in 32usize..200,
        fault_ratio in 0.0f64..0.15,
        seed in 0u64..1000,
    ) {
        // InfiniteHBD(K=3) should track the Big-Switch ideal closely under
        // realistic fault ratios (the Appendix-C bound is conservative).
        let ring = KHopRing::new(nodes, 4, 3).unwrap();
        let ideal = BigSwitch::new(nodes, 4);
        let faults = FaultSet::from_nodes(
            IidFaultModel::new(nodes, fault_ratio).sample_exact(&mut StdRng::seed_from_u64(seed)),
        );
        let ring_report = ring.utilization(&faults, 32);
        let ideal_report = ideal.utilization(&faults, 32);
        prop_assert!(ring_report.usable_gpus <= ideal_report.usable_gpus);
        // The gap is at most a handful of fragmented groups.
        prop_assert!(ideal_report.usable_gpus - ring_report.usable_gpus <= 32 * (faults.len() + 1));
    }

    #[test]
    fn greedy_and_optimized_placements_are_always_valid(
        fault_ratio in 0.0f64..0.08,
        seed in 0u64..500,
    ) {
        let nodes = 512;
        let tree = FatTree::new(nodes, 16, 8).unwrap();
        let orch = FatTreeOrchestrator::new(tree).unwrap();
        let faults = FaultSet::from_nodes(
            IidFaultModel::new(nodes, fault_ratio).sample_exact(&mut StdRng::seed_from_u64(seed)),
        );
        let request = OrchestrationRequest { job_nodes: 384, nodes_per_group: 8, k: 2 };
        let faulty: std::collections::BTreeSet<NodeId> = faults.iter().collect();
        if let Ok(placement) = orch.orchestrate(&request, &faults) {
            prop_assert!(placement.validate(8, &faulty).is_ok());
            prop_assert!(placement.nodes_placed() >= 384);
        }
        let baseline = greedy_placement(nodes, &faults, 8, 384, &mut StdRng::seed_from_u64(seed));
        prop_assert!(baseline.validate(8, &faulty).is_ok());
    }
}
