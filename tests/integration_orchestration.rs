//! Cross-crate integration tests for the HBD-DCN orchestration pipeline
//! (the §6.4 experiments, end to end).

use infinitehbd::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn setup(nodes: usize) -> (FatTree, FatTreeOrchestrator) {
    let tree = FatTree::new(nodes, 16, 8).unwrap();
    let orch = FatTreeOrchestrator::new(tree.clone()).unwrap();
    (tree, orch)
}

#[test]
fn optimized_orchestration_beats_the_greedy_baseline() {
    let (tree, orch) = setup(1024);
    let mut rng = StdRng::seed_from_u64(21);
    let faults = FaultSet::from_nodes(IidFaultModel::new(1024, 0.05).sample_exact(&mut rng));
    let request = OrchestrationRequest {
        job_nodes: 870,
        nodes_per_group: 8,
        k: 2,
    };
    let optimized = orch.orchestrate(&request, &faults).unwrap();
    let baseline = greedy_placement(1024, &faults, 8, 870, &mut rng);
    let model = TrafficModel::paper_tp32();
    let optimized_rate = cross_tor_rate(&optimized, &tree, &model);
    let baseline_rate = cross_tor_rate(&baseline, &tree, &model);
    assert!(
        baseline_rate > 0.07,
        "greedy baseline should sit near 10% cross-ToR traffic, got {baseline_rate}"
    );
    // The paper reports near-zero for its orchestrator; our DP-rank assignment
    // is a simpler heuristic (sort by rank-0 ToR), so we assert the shape: the
    // optimized placement cuts the baseline's cross-ToR traffic by at least 2x
    // and stays well below the ~10% ceiling.
    assert!(
        optimized_rate < 0.06,
        "optimized placement should stay low, got {optimized_rate}"
    );
    assert!(optimized_rate < baseline_rate / 2.0);
}

#[test]
fn orchestration_is_insensitive_to_cluster_size() {
    // Fig 17a: the cross-ToR rate of the optimized algorithm stays flat as the
    // cluster grows.
    let mut rates = Vec::new();
    for nodes in [512usize, 1024, 2048] {
        let (tree, orch) = setup(nodes);
        let mut rng = StdRng::seed_from_u64(5);
        let faults = FaultSet::from_nodes(IidFaultModel::new(nodes, 0.05).sample_exact(&mut rng));
        let request = OrchestrationRequest {
            job_nodes: nodes * 85 / 100,
            nodes_per_group: 8,
            k: 2,
        };
        let placement = orch.orchestrate(&request, &faults).unwrap();
        rates.push(cross_tor_rate(
            &placement,
            &tree,
            &TrafficModel::paper_tp32(),
        ));
    }
    for rate in &rates {
        assert!(*rate < 0.06, "rates {rates:?}");
    }
    // Flat in cluster size: the spread stays within a couple of percentage points.
    let max = rates.iter().cloned().fold(0.0f64, f64::max);
    let min = rates.iter().cloned().fold(1.0f64, f64::min);
    assert!(max - min < 0.03, "rates {rates:?}");
}

#[test]
fn cross_tor_traffic_degrades_gracefully_with_fault_ratio() {
    // Fig 17c: optimized cross-ToR traffic stays near zero for small fault
    // ratios and only climbs as faults force constraint relaxation.
    let (tree, orch) = setup(1024);
    let request = OrchestrationRequest {
        job_nodes: 870,
        nodes_per_group: 8,
        k: 2,
    };
    let model = TrafficModel::paper_tp32();
    let mut prev: f64 = 0.0;
    for (i, ratio) in [0.01, 0.04, 0.08].into_iter().enumerate() {
        let mut rng = StdRng::seed_from_u64(100 + i as u64);
        let faults = FaultSet::from_nodes(IidFaultModel::new(1024, ratio).sample_exact(&mut rng));
        match orch.orchestrate(&request, &faults) {
            Ok(placement) => {
                let rate = cross_tor_rate(&placement, &tree, &model);
                assert!(rate <= 0.12, "rate {rate} at fault ratio {ratio}");
                if ratio <= 0.01 {
                    assert!(rate < 0.02, "rate {rate} should be near zero at {ratio}");
                }
                prev = prev.max(rate);
            }
            Err(_) => {
                // At high fault ratios the 85% job may simply not fit; that is
                // the fault-waiting regime, not an orchestration failure.
                assert!(ratio >= 0.08);
            }
        }
    }
}

#[test]
fn placements_always_respect_group_size_and_faults() {
    let (_, orch) = setup(512);
    let mut rng = StdRng::seed_from_u64(9);
    let faults = FaultSet::from_nodes(IidFaultModel::new(512, 0.03).sample_exact(&mut rng));
    let request = OrchestrationRequest {
        job_nodes: 400,
        nodes_per_group: 8,
        k: 3,
    };
    let placement = orch.orchestrate(&request, &faults).unwrap();
    let faulty: std::collections::BTreeSet<NodeId> = faults.iter().collect();
    assert!(placement.validate(8, &faulty).is_ok());
    assert!(placement.nodes_placed() >= 400);
}
