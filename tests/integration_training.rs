//! Cross-crate integration tests for the training simulator (§2.3 and §6.3):
//! the Table-2/4/5 trends, reproduced end to end through the public API.

use infinitehbd::prelude::*;

#[test]
fn table2_trend_optimal_tp_grows_and_tp8_gap_widens() {
    let search = StrategySearch::paper_defaults();
    let model = ModelConfig::llama31_405b();
    let sizes = [1024usize, 8192, 65536];
    let mut previous_tp = 0usize;
    let mut previous_gain = 0.0f64;
    for gpus in sizes {
        let free = search.optimal(&model, gpus).unwrap();
        let capped = search.optimal_with_tp_cap(&model, gpus, 8).unwrap();
        assert!(free.mfu >= capped.mfu - 1e-9);
        assert!(
            free.strategy.tp >= previous_tp,
            "optimal TP shrank from {previous_tp} to {} at {gpus} GPUs",
            free.strategy.tp
        );
        let gain = free.mfu / capped.mfu;
        assert!(
            gain >= previous_gain - 0.05,
            "TP-8 gap should widen with scale ({previous_gain} -> {gain})"
        );
        previous_tp = free.strategy.tp;
        previous_gain = gain;
    }
    // At 65k GPUs the unconstrained HBD delivers a multiple of the TP-8 MFU
    // (the paper reports 2.5x at 65k and 3.37x at 131k).
    assert!(previous_gain > 1.5, "final gain {previous_gain}");
}

#[test]
fn table4_trend_ep_loses_to_tp_as_imbalance_grows() {
    let model = ModelConfig::gpt_moe_1t();
    let mut sim = TrainingSimulator::paper_defaults();
    let ep = ParallelismStrategy::new(8, 8, 16).with_ep(8);
    let tp = ParallelismStrategy::new(16, 8, 8);
    let mut previous = f64::MAX;
    for coefficient in [0.0, 0.1, 0.2, 0.3] {
        sim.imbalance = infinitehbd::llmsim::ExpertImbalance::new(coefficient);
        let ep_mfu = sim.estimate(&model, &ep).unwrap().mfu;
        let tp_mfu = sim.estimate(&model, &tp).unwrap().mfu;
        assert!(
            ep_mfu <= previous + 1e-12,
            "EP MFU should fall with imbalance"
        );
        previous = ep_mfu;
        if coefficient >= 0.2 {
            assert!(
                tp_mfu > ep_mfu * 0.95,
                "TP ({tp_mfu}) should be competitive with EP ({ep_mfu}) at {coefficient}"
            );
        }
    }
}

#[test]
fn table5_trend_moe_optimum_avoids_ep_and_scales_tp() {
    let search = StrategySearch::paper_defaults();
    let model = ModelConfig::gpt_moe_1t();
    let small = search.optimal(&model, 1024).unwrap();
    let large = search.optimal(&model, 16384).unwrap();
    assert_eq!(small.strategy.ep, 1);
    assert_eq!(large.strategy.ep, 1);
    assert!(large.strategy.tp >= small.strategy.tp);
    assert!(large.mfu < small.mfu);
}

#[test]
fn section52_ring_allreduce_utilisation_matches_prototype() {
    let model = RingUtilization::paper_calibrated();
    let ring16 = model.ring_utilization(16);
    let ring32 = model.ring_utilization(32);
    assert!((ring16 - 0.7711).abs() < 0.02);
    assert!((ring32 - 0.7726).abs() < 0.02);
    assert!(model.switch_utilization() > ring32);
    // Large-message AllReduce on the paper's 800 GBps HBD link comes close to
    // the algorithmic bound.
    let link = AlphaBeta::hbd_default();
    let cost = RingAllReduce::new(32).cost(Bytes(8e9), &link);
    assert!(cost.utilization(&link) > 0.9);
}

#[test]
fn headline_mfu_improvement_over_dgx_class_hbd() {
    // "improves Model FLOPs Utilization by 3.37x compared to NVIDIA DGX
    // (8 GPUs/node)" - measured at the largest cluster size of Table 2. We
    // assert a >2x gap at 131,072 GPUs (the shape, not the exact factor).
    let search = StrategySearch::paper_defaults();
    let model = ModelConfig::llama31_405b();
    let free = search.optimal(&model, 131_072).unwrap();
    let dgx = search.optimal_with_tp_cap(&model, 131_072, 8).unwrap();
    assert!(
        free.mfu / dgx.mfu > 2.0,
        "expected a large MFU gap at 131k GPUs, got {}x",
        free.mfu / dgx.mfu
    );
}
