//! Integration: the Appendix-G AllToAll pathway — Binary-Hop wiring,
//! feasibility constraints, symbolic correctness and fast-switch timing must
//! tell one consistent story.

use infinitehbd::collective::{
    AllToAllAlgorithm, AlphaBeta, BinaryExchangeSim, FastSwitchAllToAll,
};
use infinitehbd::prelude::*;

/// Every EP group size the Binary-Hop wiring declares feasible can actually be
/// executed: the symbolic Binary Exchange delivers every block to every rank
/// in exactly log2(p) rounds, and the wiring offers a direct hop for every
/// partner offset the algorithm uses.
#[test]
fn feasible_groups_complete_the_symbolic_binary_exchange() {
    let wiring = BinaryHopRing::new(128, 8, 6).expect("valid wiring");
    for group in [2usize, 4, 8, 16, 32, 64] {
        assert!(
            wiring.can_run_binary_exchange(NodeId(0), group, &FaultSet::new()),
            "group {group} should be feasible"
        );
        let mut sim = BinaryExchangeSim::new(group);
        sim.run();
        assert!(sim.is_complete(), "group {group} incomplete");
        assert_eq!(
            sim.rounds_executed(),
            AllToAllAlgorithm::BinaryExchange.rounds(group)
        );
    }
    // One size beyond the wiring's reach is rejected up front.
    assert!(!wiring.can_run_binary_exchange(NodeId(0), 128, &FaultSet::new()));
}

/// The fast-switch timing model agrees with the complexity claims of §7:
/// Binary Exchange scales as O(p log p) while the ring fallback scales as
/// O(p²), so the speedup grows roughly linearly in p for bandwidth-dominated
/// block sizes.
#[test]
fn speedup_grows_with_group_size_for_large_blocks() {
    let link = AlphaBeta::hbd_default();
    let block = Bytes::from_mb(32.0);
    let mut previous = 0.0f64;
    for p in [8usize, 16, 32, 64] {
        let speedup = FastSwitchAllToAll::new(p).speedup_over_ring(block, &link);
        assert!(
            speedup > previous,
            "speedup must grow with p: {speedup} at p={p}"
        );
        previous = speedup;
    }
    assert!(
        previous > 5.0,
        "at p=64 the win should be large, got {previous}"
    );
}

/// Reconfiguration overhead matters exactly where the paper says it does: for
/// small messages it erodes the Binary Exchange advantage unless it is
/// overlapped with computation, for large messages it is negligible.
#[test]
fn reconfiguration_overhead_only_matters_for_small_blocks() {
    let link = AlphaBeta::hbd_default();
    let schedule = FastSwitchAllToAll::new(32);

    let small = Bytes(64.0 * 1024.0);
    let exposed_small = schedule.cost(small, &link).total();
    let hidden_small = schedule.overlapped(Seconds(1.0)).cost(small, &link).total();
    assert!(
        exposed_small.value() > 2.0 * hidden_small.value(),
        "exposed reconfig should dominate tiny AllToAlls"
    );

    let large = Bytes::from_mb(64.0);
    let exposed_large = schedule.cost(large, &link).total();
    let hidden_large = schedule.overlapped(Seconds(1.0)).cost(large, &link).total();
    assert!(
        exposed_large.value() < 1.05 * hidden_large.value(),
        "reconfig must be negligible for large AllToAlls"
    );
}

/// The TP × EP coupling constraint of Appendix G.3 is enforced consistently
/// between node form factors.
#[test]
fn hybrid_parallelism_limits_match_the_paper() {
    let four = BinaryHopRing::new(512, 4, 4).expect("wiring");
    let eight = BinaryHopRing::new(2048, 8, 8).expect("wiring");
    // 4-GPU nodes: TP x EP <= 64.
    assert!(four.supports_hybrid(4, 16));
    assert!(!four.supports_hybrid(4, 32));
    // 8-GPU nodes: TP x EP <= 2048.
    assert!(eight.supports_hybrid(8, 256));
    assert!(!eight.supports_hybrid(8, 512));
    // The number of fast switches per node is log2(EP) - 1.
    assert_eq!(four.reconfigurations_per_node(16), 3);
    assert_eq!(eight.reconfigurations_per_node(256), 7);
}
