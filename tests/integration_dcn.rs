//! Integration: orchestration quality must translate into flow-level DCN
//! congestion the way §6.4 claims — the optimized placement keeps the
//! oversubscribed ToR uplinks out of the critical path, the greedy baseline
//! does not.

use infinitehbd::dcn::{dp_ring_flows, DcnNetwork, FlowSimulation, NetworkParams, TrafficSpec};
use infinitehbd::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn scenario(
    nodes: usize,
    fault_ratio: f64,
    seed: u64,
) -> (FatTree, FaultSet, OrchestrationRequest, StdRng) {
    let tree = FatTree::new(nodes, 16, 8).expect("valid fat-tree");
    let mut rng = StdRng::seed_from_u64(seed);
    let faults =
        FaultSet::from_nodes(IidFaultModel::new(nodes, fault_ratio).sample_exact(&mut rng));
    let request = OrchestrationRequest {
        job_nodes: nodes * 85 / 100 / 8 * 8,
        nodes_per_group: 8,
        k: 2,
    };
    (tree, faults, request, rng)
}

#[test]
fn optimized_placement_keeps_the_fabric_uncongested() {
    let (tree, faults, request, mut rng) = scenario(512, 0.05, 7);
    let orchestrator = FatTreeOrchestrator::new(tree.clone()).expect("orchestrator");
    let optimized = orchestrator.orchestrate(&request, &faults).expect("fits");
    let baseline = greedy_placement(512, &faults, 8, request.job_nodes, &mut rng);

    let network = DcnNetwork::new(tree, NetworkParams::non_blocking(16, 4).oversubscribed(4.0))
        .expect("network");
    let spec = TrafficSpec::paper_dp_allreduce();

    let optimized_report = FlowSimulation::run(&network, dp_ring_flows(&optimized, &spec))
        .expect("sim")
        .report(&network);
    let baseline_report = FlowSimulation::run(&network, dp_ring_flows(&baseline, &spec))
        .expect("sim")
        .report(&network);

    // The optimized placement produces substantially fewer cross-ToR DP flows
    // than the greedy baseline — the Figure-17 shape. (The orchestrator is a
    // deliberately simple heuristic, so "fewer", not "zero".)
    assert!(
        optimized_report.cross_tor_flows * 4 < baseline_report.cross_tor_flows * 3,
        "optimized {} vs baseline {}",
        optimized_report.cross_tor_flows,
        baseline_report.cross_tor_flows
    );
    // Which shows up as wall-clock slowdown on the oversubscribed fabric.
    assert!(optimized_report.slowdown <= baseline_report.slowdown * 1.05);
    assert!(
        baseline_report.slowdown > 1.05,
        "baseline should congest a 4:1 oversubscribed fabric, got {:.3}",
        baseline_report.slowdown
    );
    // Ideal (uncongested) completion is identical for both: same volumes.
    assert!(
        (optimized_report.ideal_completion.value() - baseline_report.ideal_completion.value())
            .abs()
            < 1e-9
    );
}

#[test]
fn non_blocking_fabric_makes_placement_irrelevant_for_slowdown() {
    let (tree, faults, request, mut rng) = scenario(256, 0.03, 21);
    let orchestrator = FatTreeOrchestrator::new(tree.clone()).expect("orchestrator");
    let optimized = orchestrator.orchestrate(&request, &faults).expect("fits");
    let baseline = greedy_placement(256, &faults, 8, request.job_nodes, &mut rng);

    // Fully non-blocking network: cross-ToR traffic is no longer a problem, so
    // both placements complete at the access-link bound (each interior node
    // shares its NIC between its two DP neighbours, hence a slowdown of ~2
    // regardless of placement). This is the ablation that justifies why the
    // paper evaluates on oversubscribed DCNs.
    let network = DcnNetwork::new(tree, NetworkParams::non_blocking(16, 4)).expect("network");
    let spec = TrafficSpec::per_pair(Bytes::from_gib(2.0));
    let reports: Vec<_> = [&optimized, &baseline]
        .iter()
        .map(|scheme| {
            FlowSimulation::run(&network, dp_ring_flows(scheme, &spec))
                .expect("sim")
                .report(&network)
        })
        .collect();
    for report in &reports {
        assert!(
            report.slowdown < 4.0,
            "non-blocking fabric should cap the slowdown near the NIC-sharing bound, got {:.2}",
            report.slowdown
        );
        assert!(report.max_link_utilization <= 1.0 + 1e-9);
    }
    // Residual spread between the two placements comes from ECMP hash
    // collisions, not structural oversubscription, so it stays within a small
    // constant factor (compare with the >5x gap the 4:1 fabric produces).
    assert!(
        reports[1].slowdown < 2.0 * reports[0].slowdown,
        "placement should not matter much on a non-blocking fabric: {:.2} vs {:.2}",
        reports[0].slowdown,
        reports[1].slowdown
    );
}

#[test]
fn multijob_mix_is_confined_by_the_optimized_placement() {
    // Three DP+PP jobs on one 512-node fabric: under the HBD-DCN
    // orchestration every job stays under its own ToRs, so the engine must
    // report (near-)isolated performance; the greedy packing of the same jobs
    // interferes measurably.
    let (tree, faults, _, mut rng) = scenario(512, 0.05, 7);
    let orchestrator = FatTreeOrchestrator::new(tree.clone()).expect("orchestrator");
    let network = DcnNetwork::new(tree, NetworkParams::non_blocking(16, 4).oversubscribed(4.0))
        .expect("network");

    let model = ModelConfig::llama31_405b();
    let comm = CommModel::paper_defaults();
    let plan = ParallelismStrategy::new(32, 4, 2);
    let matrix = TrafficMatrix::of_plan(&model, &plan, &comm);
    let request = OrchestrationRequest {
        job_nodes: 64,
        nodes_per_group: 8,
        k: 2,
    };
    let mix: Vec<MixJob> = (0..3)
        .map(|i| MixJob::new(format!("job{i}"), request))
        .collect();

    let optimized = place_mix(&orchestrator, &mix, &faults, 2).expect("mix fits");
    let optimized_jobs: Vec<JobTraffic> = optimized
        .iter()
        .map(|p| matrix.lower(&p.scheme, p.name.clone(), 2).expect("lower"))
        .collect();
    let optimized_outcome = replay_mix(&network, &optimized_jobs).expect("replay");

    let greedy_jobs: Vec<JobTraffic> = greedy_place_mix(512, &mix, &faults, &mut rng)
        .iter()
        .map(|p| matrix.lower(&p.scheme, p.name.clone(), 2).expect("lower"))
        .collect();
    let greedy_outcome = replay_mix(&network, &greedy_jobs).expect("replay");

    assert!(
        optimized_outcome.max_slowdown() <= greedy_outcome.max_slowdown() + 1e-9,
        "optimized {:.3} vs greedy {:.3}",
        optimized_outcome.max_slowdown(),
        greedy_outcome.max_slowdown()
    );
    assert!(
        greedy_outcome.max_slowdown() > 1.2,
        "greedy mixes on a 4:1 fabric must interfere, got {:.3}",
        greedy_outcome.max_slowdown()
    );
    // Slowdown is measured against genuinely equivalent isolated runs: every
    // job's isolated time is positive and no job is reported faster shared
    // than alone.
    for job in optimized_outcome.jobs.iter().chain(&greedy_outcome.jobs) {
        assert!(job.isolated_time.value() > 0.0);
        assert!(job.slowdown >= 1.0 - 1e-9, "{job:?}");
    }
}

#[test]
fn cross_tor_byte_fraction_tracks_the_orchestrator_metric() {
    let (tree, faults, request, _) = scenario(512, 0.05, 3);
    let orchestrator = FatTreeOrchestrator::new(tree.clone()).expect("orchestrator");
    let optimized = orchestrator.orchestrate(&request, &faults).expect("fits");

    let network =
        DcnNetwork::new(tree.clone(), NetworkParams::non_blocking(16, 4)).expect("network");
    let flows = dp_ring_flows(&optimized, &TrafficSpec::paper_dp_allreduce());
    let report = FlowSimulation::run(&network, flows)
        .expect("sim")
        .report(&network);

    // Every DP pair moves the same volume, so the flow-level cross-ToR byte
    // fraction must agree with the orchestrator's own pair-level accounting —
    // the two layers of the stack measure the same thing.
    let pair_fraction =
        infinitehbd::orchestrator::traffic::cross_tor_pair_fraction(&optimized, &tree);
    assert!(
        (report.cross_tor_byte_fraction - pair_fraction).abs() < 0.02,
        "byte fraction {} vs pair fraction {}",
        report.cross_tor_byte_fraction,
        pair_fraction
    );
}
