//! Cross-crate integration tests: fault traces + topologies + cluster metrics
//! (the §6.2 pipeline, end to end).

use infinitehbd::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn trace(nodes: usize, days: f64, seed: u64) -> FaultTrace {
    TraceGenerator::new(GeneratorConfig {
        nodes,
        duration: Seconds::from_days(days),
        steady_state_fault_ratio: 0.0117,
        mean_time_to_repair: Seconds::from_hours(12.0),
    })
    .unwrap()
    .generate(&mut StdRng::seed_from_u64(seed))
}

#[test]
fn infinitehbd_waste_is_an_order_of_magnitude_below_nvl_and_tpuv4() {
    // The paper's headline: 0.53% waste for TP-32 vs 10.04% (NVL-72) and 7.56%
    // (TPUv4) - a 10-20x gap. We assert the shape: near-zero for InfiniteHBD
    // and a large multiple for the baselines.
    let trace = trace(720, 90.0, 11);
    let ring = KHopRing::new(720, 4, 3).unwrap();
    let nvl = Nvl::new(720, 4, NvlVariant::Nvl72);
    let tpu = TpuV4::new(720, 4);
    let mean = |arch: &dyn HbdArchitecture| {
        let points = waste_over_trace(arch, &trace, 32, 90);
        points.iter().map(|p| p.waste_ratio).sum::<f64>() / points.len() as f64
    };
    let ring_waste = mean(&ring);
    let nvl_waste = mean(&nvl);
    let tpu_waste = mean(&tpu);
    assert!(ring_waste < 0.01, "InfiniteHBD(K=3) waste {ring_waste}");
    assert!(
        nvl_waste > 10.0 * ring_waste.max(1e-4),
        "NVL-72 waste {nvl_waste}"
    );
    assert!(
        tpu_waste > 5.0 * ring_waste.max(1e-4),
        "TPUv4 waste {tpu_waste}"
    );
}

#[test]
fn k2_and_k3_are_nearly_identical_at_production_fault_rates() {
    // §6.2: "the waste ratio for InfiniteHBD (K=2) remains almost identical to
    // that of InfiniteHBD (K=3)".
    let trace = trace(720, 90.0, 13);
    let k2 = KHopRing::new(720, 4, 2).unwrap();
    let k3 = KHopRing::new(720, 4, 3).unwrap();
    let mean = |arch: &dyn HbdArchitecture| {
        let points = waste_over_trace(arch, &trace, 32, 90);
        points.iter().map(|p| p.waste_ratio).sum::<f64>() / points.len() as f64
    };
    assert!((mean(&k2) - mean(&k3)).abs() < 0.01);
}

#[test]
fn eight_to_four_gpu_conversion_preserves_total_fault_mass() {
    let trace8 = TraceGenerator::new(GeneratorConfig::paper_8gpu_cluster())
        .unwrap()
        .generate(&mut StdRng::seed_from_u64(5));
    let trace4 = convert_8gpu_to_4gpu(&trace8, 0.0233, &mut StdRng::seed_from_u64(6));
    assert_eq!(trace4.nodes(), trace8.nodes() * 2);
    let stats8 = TraceStats::compute(&trace8, 500);
    let stats4 = TraceStats::compute(&trace4, 500);
    // Appendix A: the 4-GPU node fault ratio is about half the 8-GPU one.
    let ratio = stats4.mean_ratio / stats8.mean_ratio;
    assert!(ratio > 0.35 && ratio < 0.65, "conversion ratio {ratio}");
}

#[test]
fn max_job_and_fault_waiting_are_consistent() {
    let trace = trace(360, 60.0, 17);
    let ring = KHopRing::new(360, 4, 2).unwrap();
    let worst_job = infinitehbd::cluster::max_job_over_trace(&ring, &trace, 32, 60);
    // A job at the worst-case capacity never waits; a job above it sometimes does.
    assert_eq!(fault_waiting_rate(&ring, &trace, 32, worst_job, 60), 0.0);
    if worst_job + 32 <= 1440 {
        assert!(fault_waiting_rate(&ring, &trace, 32, worst_job + 32, 60) > 0.0);
    }
}
