//! Cross-crate integration tests for the cost analysis (§6.5): Table 6 and the
//! aggregate-cost behaviour of Fig 17d, driven by the topology waste models.

use infinitehbd::cost::normalized_aggregate_cost;
use infinitehbd::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn headline_cost_reductions_hold() {
    // "3.24x and 1.59x cost reductions compared to NVIDIA NVL-72 and Google
    // TPUv4" (per GBps of per-GPU bandwidth).
    let k2 = ArchitectureBom::infinitehbd_k2().cost_per_gbyteps();
    let nvl72 = ArchitectureBom::nvl72().cost_per_gbyteps();
    let tpuv4 = ArchitectureBom::tpuv4().cost_per_gbyteps();
    assert!(
        (nvl72 / k2 - 3.24).abs() < 0.05,
        "vs NVL-72: {}",
        nvl72 / k2
    );
    assert!((tpuv4 / k2 - 1.59).abs() < 0.05, "vs TPUv4: {}", tpuv4 / k2);
}

#[test]
fn table6_ordering_matches_the_paper() {
    let table = NormalizedCost::table6();
    let get = |name: &str| {
        table
            .iter()
            .find(|r| r.name == name)
            .unwrap_or_else(|| panic!("missing row {name}"))
            .cost_per_gbyteps
    };
    assert!(get("InfiniteHBD(K=2)") < get("InfiniteHBD(K=3)"));
    assert!(get("InfiniteHBD(K=3)") < get("TPUv4"));
    assert!(get("TPUv4") < get("NVL-36"));
    assert!(get("NVL-36") < get("NVL-36x2"));
    assert!(get("NVL-36x2") < get("NVL-576"));
}

#[test]
fn aggregate_cost_ranks_infinitehbd_cheapest_across_fault_ratios() {
    // Fig 17d: InfiniteHBD consistently exhibits the lowest aggregate cost.
    let nodes = 720;
    let mut rng = StdRng::seed_from_u64(31);
    for ratio in [0.0, 0.05, 0.10, 0.20] {
        let faults = FaultSet::from_nodes(IidFaultModel::new(nodes, ratio).sample_exact(&mut rng));
        // Compare architectures at an equal 800 GBps of per-GPU HBD bandwidth
        // (the paper's Fig 17d compares interconnects normalised per GBps;
        // otherwise TPUv4's 300 GBps fabric would look artificially cheap).
        let cost = |arch: &dyn HbdArchitecture, bom: &ArchitectureBom| {
            let report = arch.utilization(&faults, 32);
            normalized_aggregate_cost(&AggregateCostInput {
                gpu_cost: Dollars(25_000.0),
                total_gpus: report.total_gpus,
                faulty_gpus: report.faulty_gpus,
                wasted_gpus: report.wasted_healthy_gpus,
                interconnect_cost_per_gpu: Dollars(bom.cost_per_gbyteps() * 800.0),
            })
        };
        let ring = KHopRing::new(nodes, 4, 2).unwrap();
        let infinite = cost(&ring, &ArchitectureBom::infinitehbd_k2());
        let nvl = cost(
            &Nvl::new(nodes, 4, NvlVariant::Nvl72),
            &ArchitectureBom::nvl72(),
        );
        let nvl576 = cost(
            &Nvl::new(nodes, 4, NvlVariant::Nvl576),
            &ArchitectureBom::nvl576(),
        );
        let tpu = cost(&TpuV4::new(nodes, 4), &ArchitectureBom::tpuv4());
        assert!(
            infinite < nvl,
            "fault ratio {ratio}: {infinite} vs NVL {nvl}"
        );
        assert!(infinite < nvl576);
        assert!(
            infinite < tpu,
            "fault ratio {ratio}: {infinite} vs TPUv4 {tpu}"
        );
    }
}

#[test]
fn k2_is_cheaper_than_k3_at_low_fault_ratios() {
    // §6.5: below a ~12% fault ratio the K=2 configuration is the better buy.
    let nodes = 720;
    let mut rng = StdRng::seed_from_u64(33);
    let faults = FaultSet::from_nodes(IidFaultModel::new(nodes, 0.05).sample_exact(&mut rng));
    let cost = |k: usize, bom: &ArchitectureBom| {
        let ring = KHopRing::new(nodes, 4, k).unwrap();
        let report = ring.utilization(&faults, 32);
        normalized_aggregate_cost(&AggregateCostInput {
            gpu_cost: Dollars(25_000.0),
            total_gpus: report.total_gpus,
            faulty_gpus: report.faulty_gpus,
            wasted_gpus: report.wasted_healthy_gpus,
            interconnect_cost_per_gpu: bom.cost_per_gpu(),
        })
    };
    assert!(
        cost(2, &ArchitectureBom::infinitehbd_k2()) <= cost(3, &ArchitectureBom::infinitehbd_k3())
    );
}
