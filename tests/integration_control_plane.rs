//! Integration: the control plane (cluster manager + fabric managers) must
//! stay consistent with the topology layer and with the fault-resilience
//! metrics built on top of it, while replaying a realistic fault workload.

use infinitehbd::control::{BundleAction, ClusterManager, ControlLatencies, FailoverPlanner};
use infinitehbd::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Replaying a generated fault trace through the cluster manager keeps the
/// control plane's view of usable capacity identical to the topology layer's
/// waste-ratio accounting used by the paper's Figure 13/20 experiments.
#[test]
fn trace_replay_matches_topology_utilization() {
    let nodes = 180;
    let ring = KHopRing::new(nodes, 4, 3).expect("valid ring");
    let mut manager =
        ClusterManager::new(ring.clone(), ControlLatencies::hardware_only()).expect("manager");

    // Generate a short synthetic trace and replay fault/repair edges in time
    // order at a handful of sample points.
    let config = GeneratorConfig::paper_8gpu_cluster();
    let generator = TraceGenerator::new(config).expect("generator");
    let mut rng = StdRng::seed_from_u64(11);
    let trace = generator.generate(&mut rng);

    let mut current: Vec<NodeId> = Vec::new();
    for (i, sample_day) in [20.0f64, 60.0, 120.0, 200.0, 320.0].iter().enumerate() {
        let at = Seconds::from_days(*sample_day);
        let target: Vec<NodeId> = trace
            .faulty_nodes_at(at)
            .into_iter()
            .filter(|n| n.index() < nodes)
            .collect();
        // Repair nodes that recovered since the previous sample, fail new ones.
        for node in current.clone() {
            if !target.contains(&node) {
                manager.repair_node(node, at).expect("repair");
            }
        }
        for node in &target {
            if !current.contains(node) {
                manager.inject_fault(*node, at).expect("fault");
            }
        }
        current = target;

        let faults = FaultSet::from_nodes(current.iter().copied());
        for tp in [16usize, 32] {
            assert_eq!(
                manager.usable_gpus(tp),
                ring.utilization(&faults, tp).usable_gpus,
                "sample {i}, TP-{tp}"
            );
        }
        // The deployed plan always equals a freshly computed plan.
        let fresh = manager.planner().plan(manager.faults()).expect("plan");
        assert_eq!(manager.deployed_plan(), &fresh, "sample {i}");
    }
}

/// The number of bundles the control plane actually reconfigures after a
/// single fault is small and bounded — the node-level fault explosion radius
/// claimed in Table 1, now measured on the control path instead of the
/// capacity metric.
#[test]
fn single_fault_touches_a_bounded_neighbourhood_for_every_k() {
    for k in [2usize, 3, 4] {
        let ring = KHopRing::new(240, 4, k).expect("valid ring");
        let mut manager =
            ClusterManager::new(ring, ControlLatencies::hardware_only()).expect("manager");
        let report = manager
            .inject_fault(NodeId(120), Seconds(5.0))
            .expect("fault");
        assert!(
            report.nodes_reconfigured <= 2 * k,
            "K={k}: {} nodes reconfigured",
            report.nodes_reconfigured
        );
        assert!(report.hardware_latency.value() <= 80.0, "K={k}");
        assert_eq!(report.segments, 1, "K={k}: a single fault never partitions");
    }
}

/// The failover planner and the fabric managers agree on the final hardware
/// state: every directive of the deployed plan is reflected in the bundle
/// states reported by the per-node fabric managers.
#[test]
fn deployed_plan_matches_fabric_state() {
    let ring = KHopRing::new(96, 4, 2).expect("valid ring");
    let mut manager =
        ClusterManager::new(ring, ControlLatencies::production_defaults()).expect("manager");
    for (i, node) in [5usize, 6, 40, 77].iter().enumerate() {
        manager
            .inject_fault(NodeId(*node), Seconds(i as f64 * 100.0))
            .expect("fault");
    }
    let plan = manager.deployed_plan().clone();
    for n in 0..96usize {
        let directive = plan.node(NodeId(n));
        let fabric = manager.fabric(NodeId(n)).expect("fabric manager");
        for (bundle, action) in directive.iter() {
            let state = fabric.bundle_state(bundle).expect("bundle");
            let matches = matches!(
                (action, state),
                (
                    BundleAction::ActivatePrimary,
                    infinitehbd::ocstrx::BundleState::ActivePrimary
                ) | (
                    BundleAction::ActivateBackup,
                    infinitehbd::ocstrx::BundleState::ActiveBackup
                ) | (
                    BundleAction::Loopback,
                    infinitehbd::ocstrx::BundleState::Loopback
                ) | (BundleAction::Idle, infinitehbd::ocstrx::BundleState::Idle)
            );
            assert!(
                matches,
                "node {n} bundle {bundle}: plan {action:?} vs hardware {state:?}"
            );
        }
    }
}

/// The planner works for the K-Hop *line* variant too, where the two ends of
/// the deployment have reduced fault tolerance (§4.2).
#[test]
fn line_deployment_partitions_where_the_ring_does_not() {
    let line = KHopRing::line(64, 4, 2).expect("valid line");
    let ring = KHopRing::new(64, 4, 2).expect("valid ring");
    let faults = FaultSet::from_nodes([NodeId(30), NodeId(31)]);
    let line_planner = FailoverPlanner::new(line).expect("planner");
    let ring_planner = FailoverPlanner::new(ring).expect("planner");
    assert!(line_planner.is_partitioned(&faults));
    assert!(!ring_planner.is_partitioned(&faults));
    // Both plans still realise every healthy node.
    for planner in [&line_planner, &ring_planner] {
        let plan = planner.plan(&faults).expect("plan");
        assert_eq!(plan.len(), 62);
    }
}
