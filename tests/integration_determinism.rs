//! Determinism net over the whole experiment harness: every registered
//! experiment must be (a) seed-stable — two runs with the same seed produce
//! byte-identical JSON — and (b) thread-count-invariant — `--threads 1` and
//! `--threads 4` produce byte-identical JSON, which the per-shard RNG streams
//! of `hbd_types::par` guarantee by construction.
//!
//! Runs at a small scale factor so the whole registry stays cheap in debug
//! builds; determinism holds per (seed, scale) so the property tested is the
//! same one the full-scale `experiments` driver relies on.

use bench::registry::{self, RunCtx};
use bench::Table;

/// Scale factor for the sweep sizes: large enough that every experiment
/// exercises its real code path (multiple trace samples, Monte-Carlo trials,
/// orchestrator searches), small enough for debug-mode CI.
const SCALE: f64 = 0.05;

/// Serialises an experiment's output to the exact JSON bytes the harness
/// would emit.
fn run_to_json(name: &str, seed: u64, threads: usize) -> String {
    let experiment = registry::find(name).expect("registered");
    let ctx = RunCtx {
        seed,
        threads,
        scale: SCALE,
    };
    let tables: Vec<serde_json::Value> =
        (experiment.run)(&ctx).iter().map(Table::to_json).collect();
    serde_json::to_string_pretty(&serde_json::Value::Array(tables)).expect("serialisable")
}

#[test]
fn every_experiment_is_seed_stable_and_thread_count_invariant() {
    let mut checked = 0;
    for experiment in registry::all() {
        let first = run_to_json(experiment.name, 7, 1);
        let second = run_to_json(experiment.name, 7, 1);
        assert_eq!(
            first, second,
            "experiment '{}' is not deterministic for a fixed seed",
            experiment.name
        );
        let threaded = run_to_json(experiment.name, 7, 4);
        assert_eq!(
            first, threaded,
            "experiment '{}' changes output with the thread count",
            experiment.name
        );
        assert!(
            !first.is_empty() && first.contains("\"experiment\""),
            "experiment '{}' produced no tables",
            experiment.name
        );
        checked += 1;
    }
    assert_eq!(checked, registry::all().len());
    assert!(checked >= 30, "the registry lost experiments: {checked}");
}

#[test]
fn different_seeds_change_stochastic_experiments() {
    // Sanity check that the net can actually catch anything: a stochastic
    // experiment must react to the seed (a constant-output harness would pass
    // the determinism assertions vacuously).
    let a = run_to_json("fig14_waste_vs_fault", 7, 1);
    let b = run_to_json("fig14_waste_vs_fault", 8, 1);
    assert_ne!(a, b, "fig14 ignored the seed");
}

#[test]
fn scale_factor_reaches_the_sweeps() {
    let experiment = registry::find("fig13_waste_cdf").expect("registered");
    let small = (experiment.run)(&RunCtx {
        seed: 7,
        threads: 1,
        scale: 0.05,
    });
    // Four TP sizes, regardless of scale.
    assert_eq!(small.len(), 4);
    // Every architecture row survives scaling.
    assert_eq!(small[0].rows.len(), 8);
}
