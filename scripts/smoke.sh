#!/usr/bin/env bash
# Local mirror of the CI gate: tier-1 verify plus the examples/benches smoke
# check and lints. Run from the repo root before pushing.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --all --check"
cargo fmt --all --check

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo check --examples --benches"
cargo check --examples --benches

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "All smoke checks passed."
