#!/usr/bin/env bash
# Local mirror of the CI gate: tier-1 verify plus the examples/benches smoke
# check and lints. Run from the repo root before pushing.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --all --check"
cargo fmt --all --check

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo check --examples --benches"
cargo check --examples --benches

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "==> cargo doc --no-deps (rustdoc gate, -D warnings)"
# Doc rot fails the build: broken intra-doc links or missing docs on public
# items (every crate opts into #![warn(missing_docs)]) become hard errors.
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --quiet

echo "==> criterion micro-benches (JSON baselines)"
# The criterion shim appends one JSON record per benchmark to CRITERION_JSON;
# CRITERION_SAMPLES keeps the pass cheap. The experiments driver below folds
# the records into bench_results.json under the "microbenches" key.
mkdir -p target/smoke
rm -f target/smoke/criterion.jsonl
CRITERION_JSON="$PWD/target/smoke/criterion.jsonl" CRITERION_SAMPLES=3 cargo bench -q

echo "==> experiments driver (smoke scale)"
# Run the full registry at a small scale factor and leave the collated outputs
# under target/smoke/ (CI uploads them as workflow artifacts).
cargo run --release --bin experiments -- \
  --scale 0.05 --threads 2 \
  --md target/smoke/EXPERIMENTS.md --out target/smoke/bench_results.json \
  --bench-json target/smoke/criterion.jsonl

echo "==> EXPERIMENTS.md freshness + wall-clock deltas"
# The committed EXPERIMENTS.md must match a full-scale regeneration at the
# default seed — otherwise an experiment changed without refreshing the
# tracked artifact (refresh: cargo run --release --bin experiments).
# --compare prints per-experiment wall-clock deltas against the repo-root
# bench_results.json — informational only (wall-clock is machine-dependent),
# so the log surfaces perf regressions without gating on them. The baseline
# must be a FULL-SCALE run to be like-for-like with this compare site:
# locally it exists after any full regeneration (gitignored); on a fresh CI
# checkout it is absent and the report degrades to a one-line skip. A CI job
# can opt in by restoring the previous push's bench_results.full.json
# artifact to ./bench_results.json before running this script (the
# smoke-scale target/smoke/bench_results.json is NOT comparable here).
# --warn-over prints a visible (still non-fatal) summary of experiments whose
# wall-clock grew to 2x or more of the baseline, so CI logs surface real
# regressions without failing on machine jitter. The driver now refuses
# --warn-over when the baseline is missing or unusable (the gating flag must
# not silently no-op), so the compare pair is only passed when the baseline
# file actually exists.
if [ -f bench_results.json ]; then
  cargo run --release --bin experiments -- \
    --md target/smoke/EXPERIMENTS.full.md --out target/smoke/bench_results.full.json \
    --compare bench_results.json --warn-over 2.0
else
  echo "    (no ./bench_results.json baseline — full regeneration without compare)"
  cargo run --release --bin experiments -- \
    --md target/smoke/EXPERIMENTS.full.md --out target/smoke/bench_results.full.json
fi
diff -u EXPERIMENTS.md target/smoke/EXPERIMENTS.full.md

echo "==> lifecycle simulator smoke gate"
# The three lifecycle experiments replay the online cluster simulator at
# smoke scale across both thread counts; the partial run prints to stdout
# and writes no files. Seed-stability and threads-invariance of the same
# runs are asserted bit-for-bit by tests/integration_determinism.rs.
cargo run --release --bin experiments -- \
  --only ext_lifecycle --scale 0.05 --threads 2 > /dev/null

echo "==> placement-service throughput smoke gate"
# Drives the open-loop query stream of the service-layer experiment at smoke
# scale across a multi-threaded fan-out; bit-stability of the same run in the
# seed and the thread count is asserted by tests/integration_determinism.rs,
# and the batched answers themselves are pinned to the single-query oracle by
# crates/orchestrator/tests/service_oracle.rs.
cargo run --release --bin experiments -- \
  --only ext_service_throughput --scale 0.05 --threads 2 > /dev/null

echo "==> incremental-publish smoke gate"
# Drives the delta-published epoch chain of the incremental-publish
# experiment at smoke scale across a multi-threaded fan-out; the patched
# scratches it exercises are pinned bit-for-bit to cold rebuilds by
# crates/orchestrator/tests/service_delta.rs and the fat_tree patch
# properties, and seed/thread bit-stability of the run itself is asserted by
# tests/integration_determinism.rs.
cargo run --release --bin experiments -- \
  --only ext_incremental_publish --scale 0.05 --threads 2 > /dev/null

echo "==> overload-shedding smoke gate"
# Drives the offered-load sweep past saturation at smoke scale across a
# multi-threaded fan-out. The load points self-calibrate against a
# back-to-back run, so this gate keeps working as the modeled cost model
# evolves; the bounded-p99-vs-collapse acceptance criterion itself is pinned
# by the experiment's unit test, and seed/thread bit-stability by
# tests/integration_determinism.rs.
cargo run --release --bin experiments -- \
  --only ext_overload_shedding --scale 0.05 --threads 2 > /dev/null

echo "==> fault-storm survival smoke gate"
# Replays the correlated fault-storm sweep (storm generator -> ledger deltas
# -> retrying breaker-guarded client) at smoke scale; conservation of query
# outcomes is pinned by the experiment's unit test and the admission oracle
# proptests, and seed/thread bit-stability by tests/integration_determinism.rs.
cargo run --release --bin experiments -- \
  --only ext_fault_storms --scale 0.05 --threads 2 > /dev/null

echo "==> control-plane sim seed replay gate"
# Replays the two regression seeds pinned in crates/control/src/sim.rs
# through the public CLI: the driver exits non-zero if the run misses
# convergence or records any invariant violation. The full-registry
# regeneration above already re-sweeps all 1200 seeded orderings — its
# violations column gates through the EXPERIMENTS.md diff.
cargo run --release --bin experiments -- \
  --sim-seed 260778234563238397 --sim-profile clean > /dev/null
cargo run --release --bin experiments -- \
  --sim-seed 1495124568307875091 --sim-profile reorder > /dev/null

echo "All smoke checks passed."
