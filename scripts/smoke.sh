#!/usr/bin/env bash
# Local mirror of the CI gate: tier-1 verify plus the examples/benches smoke
# check and lints. Run from the repo root before pushing.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --all --check"
cargo fmt --all --check

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo check --examples --benches"
cargo check --examples --benches

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "==> experiments driver (smoke scale)"
# Run the full registry at a small scale factor and leave the collated outputs
# under target/smoke/ (CI uploads them as workflow artifacts).
mkdir -p target/smoke
cargo run --release --bin experiments -- \
  --scale 0.05 --threads 2 \
  --md target/smoke/EXPERIMENTS.md --out target/smoke/bench_results.json

echo "==> EXPERIMENTS.md freshness"
# The committed EXPERIMENTS.md must match a full-scale regeneration at the
# default seed — otherwise an experiment changed without refreshing the
# tracked artifact (refresh: cargo run --release --bin experiments).
cargo run --release --bin experiments -- \
  --md target/smoke/EXPERIMENTS.full.md --out target/smoke/bench_results.full.json
diff -u EXPERIMENTS.md target/smoke/EXPERIMENTS.full.md

echo "All smoke checks passed."
