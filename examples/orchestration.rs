//! HBD-DCN orchestration: place a large TP-32 job on a faulty cluster with the
//! greedy baseline and with the paper's binary-search orchestrator, and compare
//! the cross-ToR traffic (the §6.4 experiment).
//!
//! Run with: `cargo run -p infinitehbd --example orchestration --release`

use infinitehbd::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<()> {
    // The paper's 8,192-GPU cluster: 2,048 nodes, 16 per ToR, 8 ToRs/domain.
    let config = ClusterConfig::paper_8192_gpu();
    let fat_tree = FatTree::from_config(&config)?;
    let orchestrator = FatTreeOrchestrator::new(fat_tree.clone())?;

    // 5% of nodes are faulty; the job wants 85% of the cluster at TP-32.
    let model = IidFaultModel::new(config.nodes, 0.05);
    let faults = FaultSet::from_nodes(model.sample_exact(&mut StdRng::seed_from_u64(7)));
    let request = OrchestrationRequest {
        job_nodes: (config.nodes as f64 * 0.85) as usize,
        nodes_per_group: 32 / config.node_size.gpus(),
        k: 2,
    };

    let optimized = orchestrator.orchestrate(&request, &faults)?;
    let baseline = greedy_placement(
        config.nodes,
        &faults,
        request.nodes_per_group,
        request.job_nodes,
        &mut StdRng::seed_from_u64(7),
    );

    let traffic = TrafficModel::paper_tp32();
    println!(
        "job: {} nodes (TP-32), fault ratio {:.1}%",
        request.job_nodes,
        faults.node_fault_ratio(config.nodes) * 100.0
    );
    println!(
        "baseline  : {:4} groups placed, cross-ToR traffic {:.2}%",
        baseline.len(),
        cross_tor_rate(&baseline, &fat_tree, &traffic) * 100.0
    );
    println!(
        "optimized : {:4} groups placed, cross-ToR traffic {:.2}%",
        optimized.len(),
        cross_tor_rate(&optimized, &fat_tree, &traffic) * 100.0
    );
    Ok(())
}
