//! Quickstart: build an InfiniteHBD cluster, inject a few faults, and look at
//! how the K-Hop Ring keeps (almost) every healthy GPU usable.
//!
//! Run with: `cargo run -p infinitehbd --example quickstart`

use infinitehbd::prelude::*;

fn main() -> Result<()> {
    // A 2,880-GPU cluster: 720 nodes with 4 GPUs each, wired as the paper's
    // K = 3 reconfigurable ring.
    let ring = KHopRing::new(720, 4, 3)?;
    println!(
        "cluster: {} nodes x {} GPUs = {} GPUs, topology {}",
        ring.nodes(),
        ring.gpus_per_node(),
        ring.total_gpus(),
        ring.name()
    );

    // The transceiver that makes this possible: a QSFP-DD 800G module with an
    // embedded optical circuit switch.
    let mut trx = OcsTrx::new();
    let latency = trx.reconfigure(PathId::External2)?;
    println!("OCSTrx fail-over onto the backup fiber takes {latency} (spec: 60-80 us)");

    // Healthy cluster, TP-32: everything is usable.
    let healthy = ring.utilization(&FaultSet::new(), 32);
    println!(
        "healthy: {} usable GPUs, waste ratio {:.2}%",
        healthy.usable_gpus,
        healthy.waste_ratio() * 100.0
    );

    // Now fail 2% of the nodes at random-ish positions.
    let faults = FaultSet::from_nodes((0..14).map(|i| NodeId(i * 51)));
    let report = ring.utilization(&faults, 32);
    println!(
        "with {} faulty nodes: {} usable GPUs, waste ratio {:.2}% (faulty GPUs excluded)",
        faults.len(),
        report.usable_gpus,
        report.waste_ratio() * 100.0
    );

    // Compare against a switch-centric NVL-72 deployment of the same GPUs.
    let nvl = Nvl::new(720, 4, NvlVariant::Nvl72);
    let nvl_report = nvl.utilization(&faults, 32);
    println!(
        "NVL-72 on the same faults: waste ratio {:.2}% (fragmentation dominates)",
        nvl_report.waste_ratio() * 100.0
    );

    // And the economics: interconnect cost per GPU per GBps (Table 6).
    for bom in [ArchitectureBom::infinitehbd_k2(), ArchitectureBom::nvl72()] {
        println!(
            "{:<18} ${:>8.2}/GPU  {:>5.2} $/GBps",
            bom.name,
            bom.cost_per_gpu().value(),
            bom.cost_per_gbyteps()
        );
    }
    Ok(())
}
