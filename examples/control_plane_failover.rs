//! Control-plane failover walkthrough: a cluster manager reacting to node
//! faults on the reconfigurable K-Hop Ring.
//!
//! The example deploys a 256-node (1,024-GPU) InfiniteHBD with K = 2, lets the
//! cluster manager bring up the initial ring, then injects faults and repairs
//! and prints what the control plane actually did: how many OCSTrx bundles
//! switched, on how many nodes, how long the hardware took (60–80 µs per
//! switch, all in parallel), and what the end-to-end recovery time looks like
//! once realistic software latencies (detection, planning, dispatch) are
//! included.
//!
//! Run with: `cargo run -p infinitehbd --example control_plane_failover`

use infinitehbd::prelude::*;

fn main() -> Result<()> {
    let ring = KHopRing::new(256, 4, 2)?;
    println!(
        "deploying {} ({} nodes, {} GPUs) under cluster-manager control\n",
        ring.name(),
        ring.nodes(),
        ring.total_gpus()
    );

    // Hardware-only latencies first: this isolates the OCSTrx switching time.
    let mut manager = ClusterManager::new(ring.clone(), ControlLatencies::hardware_only())?;
    println!(
        "initial ring deployed: {} reconfiguration commands, {} usable GPUs for TP-32\n",
        manager.timeline().commands_applied(),
        manager.usable_gpus(32)
    );

    // A single node fault: the Figure-2 scenario.
    let report = manager.inject_fault(NodeId(100), Seconds(10.0))?;
    print_report("single node fault (hardware-only latencies)", &report);

    // A second, adjacent fault: with K = 2 the pair cannot be bypassed in the
    // middle, but the closed ring re-joins around the deployment boundary.
    let report = manager.inject_fault(NodeId(101), Seconds(20.0))?;
    print_report("adjacent second fault", &report);

    // Repair both nodes.
    manager.repair_node(NodeId(100), Seconds(30.0))?;
    let report = manager.repair_node(NodeId(101), Seconds(40.0))?;
    print_report("after repairing both nodes", &report);

    // The same fault handled with production software latencies, to show where
    // the end-to-end recovery time really goes (hint: not the optics).
    let mut production = ClusterManager::new(ring, ControlLatencies::production_defaults())?;
    let report = production.inject_fault(NodeId(42), Seconds(0.0))?;
    println!(
        "with production control-plane latencies the same failover takes {:.3} s end-to-end,\n\
         of which only {} is OCSTrx switching — the optics are never the bottleneck.\n",
        report.total_recovery.value(),
        report.hardware_latency
    );

    println!(
        "control-plane totals: {} commands applied, {} of cumulative switching time",
        production.timeline().commands_applied(),
        production.timeline().total_switching_time()
    );
    Ok(())
}

fn print_report(label: &str, report: &RecoveryReport) {
    println!("-- {label}");
    println!(
        "   commands: {}   nodes reconfigured: {}   segments: {}   faulty nodes: {}",
        report.commands, report.nodes_reconfigured, report.segments, report.faulty_nodes
    );
    println!(
        "   slowest hardware switch: {}   end-to-end recovery: {:.6} s\n",
        report.hardware_latency,
        report.total_recovery.value()
    );
}
