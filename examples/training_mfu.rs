//! Training-performance study: search the parallelism space for Llama 3.1-405B
//! at increasing cluster sizes, with and without the TP-8 cap of a conventional
//! 8-GPU HBD (the Table-2 experiment and the headline MFU claim).
//!
//! Run with: `cargo run -p infinitehbd --example training_mfu --release`

use infinitehbd::prelude::*;

fn main() -> Result<()> {
    let search = StrategySearch::paper_defaults();
    let model = ModelConfig::llama31_405b();

    println!(
        "{:>8} {:>18} {:>8} {:>10} {:>10}",
        "GPUs", "optimal (TP/PP/DP)", "MFU", "MFU TP<=8", "improve"
    );
    for gpus in [1024usize, 4096, 16384, 65536] {
        let free = search.optimal(&model, gpus)?;
        let capped = search.optimal_with_tp_cap(&model, gpus, 8)?;
        println!(
            "{:>8} {:>18} {:>8.4} {:>10.4} {:>9.2}x",
            gpus,
            format!("{}", free.strategy),
            free.mfu,
            capped.mfu,
            free.mfu / capped.mfu
        );
    }

    // MoE: TP vs EP under expert imbalance (the Table-4 comparison).
    let moe = ModelConfig::gpt_moe_1t();
    let sim = TrainingSimulator::paper_defaults();
    let tp_strategy = ParallelismStrategy::new(16, 8, 8);
    let ep_strategy = ParallelismStrategy::new(8, 8, 16).with_ep(8);
    println!("\nGPT-MoE 1.1T on 1,024 GPUs (20% expert imbalance):");
    println!(
        "  TP-sharded experts : MFU {:.4}",
        sim.estimate(&moe, &tp_strategy)?.mfu
    );
    println!(
        "  EP-routed  experts : MFU {:.4}",
        sim.estimate(&moe, &ep_strategy)?.mfu
    );
    Ok(())
}
