//! Cost and power analysis: reproduce Table 6 and the aggregate-cost view of
//! Fig 17d for a 3K-GPU cluster running TP-32.
//!
//! Run with: `cargo run -p infinitehbd --example cost_analysis --release`

use infinitehbd::cost::normalized_aggregate_cost;
use infinitehbd::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<()> {
    println!(
        "{:<18} {:>12} {:>10} {:>12} {:>12}",
        "architecture", "$/GPU", "W/GPU", "$/GBps", "W/GBps"
    );
    for row in NormalizedCost::table6() {
        println!(
            "{:<18} {:>12.2} {:>10.2} {:>12.2} {:>12.3}",
            row.name,
            row.cost_per_gpu,
            row.watts_per_gpu,
            row.cost_per_gbyteps,
            row.watts_per_gbyteps
        );
    }

    // Aggregate cost under faults: waste feeds back into economics.
    let nodes = 720;
    let mut rng = StdRng::seed_from_u64(3);
    println!("\naggregate cost (normalized, 2,880 GPUs, TP-32):");
    println!(
        "{:>12} {:>18} {:>12} {:>12}",
        "fault ratio", "InfiniteHBD(K=2)", "NVL-72", "TPUv4"
    );
    for ratio in [0.0, 0.05, 0.10, 0.20] {
        let faults = FaultSet::from_nodes(IidFaultModel::new(nodes, ratio).sample_exact(&mut rng));
        let mut row = vec![format!("{:>11.0}%", ratio * 100.0)];
        for (arch, bom) in [
            (
                Box::new(KHopRing::new(nodes, 4, 2)?) as Box<dyn HbdArchitecture>,
                ArchitectureBom::infinitehbd_k2(),
            ),
            (
                Box::new(Nvl::new(nodes, 4, NvlVariant::Nvl72)),
                ArchitectureBom::nvl72(),
            ),
            (Box::new(TpuV4::new(nodes, 4)), ArchitectureBom::tpuv4()),
        ] {
            let report = arch.utilization(&faults, 32);
            let cost = normalized_aggregate_cost(&AggregateCostInput {
                gpu_cost: Dollars(25_000.0),
                total_gpus: report.total_gpus,
                faulty_gpus: report.faulty_gpus,
                wasted_gpus: report.wasted_healthy_gpus,
                interconnect_cost_per_gpu: Dollars(bom.cost_per_gbyteps() * 800.0),
            });
            row.push(format!("{cost:>12.1}"));
        }
        println!("{}", row.join(" "));
    }
    Ok(())
}
