//! Fault-resilience study: replay a production-calibrated fault trace against
//! every HBD architecture of the paper's comparison (the §6.2 experiments).
//!
//! Run with: `cargo run -p infinitehbd --example fault_resilience --release`

use infinitehbd::prelude::*;

fn main() -> Result<()> {
    // TP-32 on the paper's 2,880-GPU cluster, 348 simulated days.
    let study = ClusterStudy::paper_cluster(32, 42)?;
    let stats = TraceStats::daily(study.trace());
    println!(
        "fault trace: mean {:.2}% faulty nodes, p99 {:.2}% ({} events over {:.0} days)",
        stats.mean_ratio * 100.0,
        stats.p99_ratio * 100.0,
        study.trace().len(),
        study.trace().duration().as_days()
    );

    println!(
        "\n{:<18} {:>12} {:>12} {:>14} {:>16}",
        "architecture", "mean waste", "max waste", "min job (GPU)", "wait@90% job"
    );
    for report in study.run(348) {
        println!(
            "{:<18} {:>11.2}% {:>11.2}% {:>14} {:>15.1}%",
            report.architecture,
            report.mean_waste_ratio * 100.0,
            report.max_waste_ratio * 100.0,
            report.min_supported_job,
            report.fault_waiting_rate_90pct * 100.0
        );
    }

    // The closed-form Appendix-C bound for the same setting.
    let bound = infinitehbd::cluster::waste_ratio_upper_bound(
        &infinitehbd::cluster::theory::WasteBoundInput {
            gpus_per_node: 4,
            k: 3,
            tp_size: 32,
            node_failure_probability: infinitehbd::cluster::theory::paper_node_failure_probability(
                4,
            ),
        },
    );
    println!(
        "\nAppendix-C upper bound for K=3, R=4, TP-32: {:.3}%",
        bound * 100.0
    );
    Ok(())
}
