//! From placement quality to DCN congestion: what the HBD-DCN orchestration
//! algorithm buys at flow level.
//!
//! The paper's Figure 17 reports the *fraction of traffic* that crosses a ToR
//! under the baseline (greedy) and optimized placements. This example pushes
//! the comparison one level further: it expands both placements into the DP
//! flows they induce, runs them through the flow-level Fat-Tree simulator
//! (ECMP + max-min fair sharing on an oversubscribed fabric), and reports the
//! resulting congestion — link utilisation, completion-time slowdown, and the
//! exposed DP communication time a training iteration would see.
//!
//! Run with: `cargo run -p infinitehbd --example dcn_congestion`

use infinitehbd::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<()> {
    // 512 nodes (2,048 GPUs), 16 nodes per ToR, 8 ToRs per aggregation domain.
    let nodes = 512usize;
    let tree = FatTree::new(nodes, 16, 8)?;
    let orchestrator = FatTreeOrchestrator::new(tree.clone())?;
    let mut rng = StdRng::seed_from_u64(42);

    // 5% of nodes are down; the job wants 85% of the cluster at TP-32
    // (8 nodes per TP group on 4-GPU nodes).
    let faults = FaultSet::from_nodes(IidFaultModel::new(nodes, 0.05).sample_exact(&mut rng));
    let request = OrchestrationRequest {
        job_nodes: nodes * 85 / 100 / 8 * 8,
        nodes_per_group: 8,
        k: 2,
    };

    let baseline = greedy_placement(nodes, &faults, 8, request.job_nodes, &mut rng);
    let optimized = orchestrator.orchestrate(&request, &faults)?;

    // A 2:1 oversubscribed fabric — the regime where placement starts to
    // matter for wall-clock time, not just for traffic accounting.
    let network = DcnNetwork::new(
        tree.clone(),
        NetworkParams::non_blocking(16, 4).oversubscribed(2.0),
    )?;
    let spec = TrafficSpec::paper_dp_allreduce();

    println!(
        "job: {} nodes, TP-32, 5% node faults, 2:1 oversubscribed Fat-Tree\n",
        request.job_nodes
    );
    let model = TrafficModel::paper_tp32();
    for (label, scheme) in [
        ("greedy baseline", &baseline),
        ("HBD-DCN optimized", &optimized),
    ] {
        let flows = dp_ring_flows(scheme, &spec);
        let sim = FlowSimulation::run(&network, flows)?;
        let report = sim.report(&network);
        println!("-- {label}");
        println!(
            "   cross-ToR rate (traffic accounting): {:.2}%",
            cross_tor_rate(scheme, &tree, &model) * 100.0
        );
        println!(
            "   DP flows: {}   crossing a ToR: {}   cross-ToR bytes: {:.1}%",
            report.flows,
            report.cross_tor_flows,
            report.cross_tor_byte_fraction * 100.0
        );
        println!(
            "   exposed DP time: {:.3} s (uncongested lower bound {:.3} s, slowdown {:.2}x)",
            report.max_completion.value(),
            report.ideal_completion.value(),
            report.slowdown
        );
        println!(
            "   busiest link utilisation: {:.0}%   mean loaded-link utilisation: {:.0}%\n",
            report.max_link_utilization * 100.0,
            report.mean_loaded_link_utilization * 100.0
        );
    }

    println!(
        "The optimized placement keeps substantially more DP pairs under their ToR than the greedy\n\
         baseline, so less traffic contends for the oversubscribed uplinks and the exposed DP time\n\
         moves towards the access-link bound."
    );
    Ok(())
}
