//! Expert Parallelism on InfiniteHBD: the Appendix-G AllToAll story.
//!
//! InfiniteHBD is built for Ring-AllReduce, but Appendix G shows how the same
//! OCSTrx hardware could serve MoE expert parallelism: rewire the backup links
//! to distances ±1, ±2, ±4, ... (the Binary-Hop Ring), and run the Binary
//! Exchange AllToAll with fast path switching between rounds. This example
//! walks through the three pieces:
//!
//! 1. feasibility — which EP group sizes the ±2^i wiring supports, and the
//!    TP × EP coupling constraint for 4- and 8-GPU nodes,
//! 2. timing — Binary Exchange vs the O(p²) ring fallback, with the 60–80 µs
//!    reconfiguration either exposed or hidden behind expert compute,
//! 3. hierarchy — what the two-level AllReduce buys for the TP dimension that
//!    coexists with EP.
//!
//! Run with: `cargo run -p infinitehbd --example alltoall_ep`

use infinitehbd::prelude::*;

fn main() -> Result<()> {
    // 1. Feasibility on the Binary-Hop wiring.
    let four_gpu = BinaryHopRing::new(256, 4, 4)?;
    let eight_gpu = BinaryHopRing::new(1024, 8, 8)?;
    println!("Binary-Hop Ring feasibility (Appendix G.3)");
    println!(
        "  4-GPU nodes: hops {:?}, max EP group {} nodes, TP x EP <= {}",
        four_gpu.hop_distances(),
        four_gpu.max_ep_group_nodes(),
        four_gpu.tp_ep_product_limit()
    );
    println!(
        "  8-GPU nodes: max EP group {} nodes, TP x EP <= {}",
        eight_gpu.max_ep_group_nodes(),
        eight_gpu.tp_ep_product_limit()
    );
    for (tp, ep) in [(4usize, 8usize), (4, 16), (8, 16)] {
        println!(
            "  TP-{tp} x EP-{ep} on 4-GPU nodes: {}",
            if four_gpu.supports_hybrid(tp, ep) {
                "supported"
            } else {
                "exceeds the coupling constraint"
            }
        );
    }
    let faults = FaultSet::from_nodes([NodeId(3)]);
    println!(
        "  EP-8 group at node 0 with node 3 faulty: {}\n",
        if four_gpu.can_run_binary_exchange(NodeId(0), 8, &faults) {
            "runnable"
        } else {
            "blocked (fault inside the group)"
        }
    );

    // 2. Binary Exchange vs ring AllToAll for a DeepSeek-style MoE dispatch.
    let link = AlphaBeta::hbd_default();
    let block = Bytes::from_mb(24.0); // per-destination token block of one MoE layer
    println!("AllToAll timing, 24 MiB per destination block, 800 GB/s OCSTrx links");
    println!(
        "{:>8} {:>14} {:>18} {:>18} {:>10}",
        "EP size", "ring O(p^2)", "binexch (exposed)", "binexch (overlap)", "speedup"
    );
    for p in [4usize, 8, 16, 32, 64] {
        let schedule = FastSwitchAllToAll::new(p);
        let exposed = schedule.cost(block, &link);
        let overlapped = schedule.overlapped(Seconds(200e-6)).cost(block, &link);
        let ring = schedule.ring_fallback(block, &link);
        println!(
            "{:>8} {:>12.3} ms {:>15.3} ms {:>15.3} ms {:>9.2}x",
            p,
            ring.value() * 1e3,
            exposed.total().value() * 1e3,
            overlapped.total().value() * 1e3,
            ring.value() / overlapped.total().value()
        );
    }

    // 3. The TP dimension still runs AllReduce; on multi-GPU nodes the
    // hierarchical schedule keeps the slow inter-node ring short.
    let hierarchical = HierarchicalAllReduce::new(8, 16);
    let message = Bytes::from_gib(2.0);
    let speedup = hierarchical.speedup(
        message,
        &AlphaBeta::hbd_default(),
        &AlphaBeta::dcn_default(),
    );
    println!(
        "\nhierarchical AllReduce over {} GPUs ({} GPUs/node x {} nodes): {:.1}x faster than a flat ring\n\
         when the inter-node tier is DCN-class bandwidth.",
        hierarchical.ranks(),
        hierarchical.gpus_per_node,
        hierarchical.nodes,
        speedup
    );
    Ok(())
}
